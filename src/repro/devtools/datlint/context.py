"""Per-file analysis context shared by every rule.

A :class:`FileContext` bundles the parsed AST, the dotted module name (so
rules can exempt e.g. :mod:`repro.util.rng`), and the suppression table
parsed from ``# datlint: disable=...`` comments.

Suppression grammar
-------------------
``# datlint: disable=DAT001`` or ``# datlint: disable=DAT001,DAT004`` or
``# datlint: disable=all``.

* On a line of its own (only whitespace before the ``#``), the comment
  suppresses the listed rules for the **whole file**.
* Trailing a statement, it suppresses the listed rules on that **line** only.

Each comment is also recorded as a :class:`SuppressionRecord` so the runner
can report suppressions that no longer silence anything
(``--warn-unused-suppressions``).

Guard annotations
-----------------
``# guarded-by: _lock`` on an attribute assignment inside a class declares
that the attribute may only be mutated while holding ``self._lock`` — the
explicit contract consumed by rule DAT010 (lock discipline). The
annotation complements inference (an attribute written under the lock
anywhere is treated as guarded everywhere).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "FileContext",
    "SuppressionRecord",
    "parse_suppressions",
    "parse_guard_annotations",
    "module_name_for",
]

_SUPPRESS_RE = re.compile(
    r"#\s*datlint:\s*disable=(?P<codes>[A-Za-z0-9_,\s]+)"
)

_GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*(?P<lock>[A-Za-z_]\w*)")


def module_name_for(path: Path) -> str:
    """Best-effort dotted module name for ``path``.

    Walks the path components for the last ``repro`` segment and joins from
    there (``src/repro/chord/node.py`` -> ``repro.chord.node``); a file
    outside any ``repro`` tree is identified by its stem alone, which makes
    every module-scoped exemption inapplicable — the strictest default.
    """
    parts = list(path.resolve().parts)
    if "repro" in parts:
        start = len(parts) - 1 - parts[::-1].index("repro")
        dotted = [p for p in parts[start:]]
        dotted[-1] = Path(dotted[-1]).stem
        if dotted[-1] == "__init__":
            dotted = dotted[:-1]
        return ".".join(dotted)
    return path.stem


@dataclass
class SuppressionRecord:
    """One ``# datlint: disable=...`` comment, tracked for usage.

    ``line`` is where the comment sits; ``codes`` the rule codes it lists
    (``{"ALL"}`` for ``disable=all``); ``standalone`` whether it governs
    the whole file (own line) or just its own line. ``used`` flips to
    ``True`` the first time the record actually suppresses a diagnostic —
    records still ``False`` at the end of a run are stale.
    """

    line: int
    codes: frozenset[str]
    standalone: bool
    used: bool = False

    def matches(self, rule: str, line: int) -> bool:
        """Whether this record suppresses ``rule`` reported at ``line``."""
        if not self.standalone and line != self.line:
            return False
        return "ALL" in self.codes or rule in self.codes


@dataclass
class _SuppressionTable:
    """Which rules are off for the file / for individual lines."""

    file_level: set[str] = field(default_factory=set)
    by_line: dict[int, set[str]] = field(default_factory=dict)
    suppress_all_file: bool = False
    all_lines: set[int] = field(default_factory=set)
    records: list[SuppressionRecord] = field(default_factory=list)

    def is_suppressed(self, rule: str, line: int) -> bool:
        if self.suppress_all_file or rule in self.file_level:
            return True
        if line in self.all_lines:
            return True
        return rule in self.by_line.get(line, set())

    def consume(self, rule: str, line: int) -> bool:
        """Like :meth:`is_suppressed`, but marks matching records as used."""
        hit = False
        for record in self.records:
            if record.matches(rule, line):
                record.used = True
                hit = True
        return hit

    def unused_records(self) -> list[SuppressionRecord]:
        """Records that suppressed nothing during the run, in line order."""
        return [r for r in self.records if not r.used]


def parse_suppressions(source: str) -> _SuppressionTable:
    """Extract the suppression table from ``# datlint: disable=...`` comments."""
    table = _SuppressionTable()
    lines = source.splitlines()
    for token in _comment_tokens(source):
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        codes = {
            code.strip().upper()
            for code in match.group("codes").split(",")
            if code.strip()
        }
        row, col = token.start
        line_text = lines[row - 1] if row - 1 < len(lines) else ""
        standalone = line_text[:col].strip() == ""
        table.records.append(
            SuppressionRecord(line=row, codes=frozenset(codes), standalone=standalone)
        )
        if "ALL" in codes:
            if standalone:
                table.suppress_all_file = True
            else:
                table.all_lines.add(row)
            codes = codes - {"ALL"}
        if standalone:
            table.file_level |= codes
        else:
            table.by_line.setdefault(row, set()).update(codes)
    return table


def _comment_tokens(source: str) -> list[tokenize.TokenInfo]:
    """All COMMENT tokens of ``source`` (empty when tokenization fails)."""
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return []
    return [token for token in tokens if token.type == tokenize.COMMENT]


def parse_guard_annotations(source: str) -> dict[int, str]:
    """``line -> lock attribute`` for every ``# guarded-by: <lock>`` comment."""
    guards: dict[int, str] = {}
    for token in _comment_tokens(source):
        match = _GUARDED_BY_RE.search(token.string)
        if match is not None:
            guards[token.start[0]] = match.group("lock")
    return guards


class FileContext:
    """Everything a rule needs to analyze one file."""

    def __init__(self, path: Path, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.module = module_name_for(path)
        self.suppressions = parse_suppressions(source)
        self.guard_annotations = parse_guard_annotations(source)

    # ------------------------------------------------------------------ #
    # Module-classification helpers used by rule exemption lists
    # ------------------------------------------------------------------ #

    def module_is(self, *dotted: str) -> bool:
        """True if this file is exactly one of the given dotted modules."""
        return self.module in dotted

    def module_under(self, *packages: str) -> bool:
        """True if this file lives in (or is) one of the given packages."""
        return any(
            self.module == pkg or self.module.startswith(pkg + ".")
            for pkg in packages
        )

    @property
    def is_output_module(self) -> bool:
        """Modules allowed to write to stdout (DAT004 exemptions).

        CLI entry points (``cli``/``__main__`` modules), the experiment
        harnesses, the text renderer :mod:`repro.viz`, devtools (this
        linter's own CLI prints its report), and the report/assembly CLIs
        (``python -m repro.telemetry.report`` / ``.traces`` /
        ``repro.fleet.report`` print summary tables).
        """
        last = self.module.rsplit(".", 1)[-1]
        return (
            last in ("cli", "__main__", "viz")
            or self.module_is(
                "repro.telemetry.report",
                "repro.telemetry.traces",
                "repro.fleet.report",
            )
            or self.module_under("repro.experiments", "repro.devtools")
        )

"""datlint — the reproduction's own static-analysis pass.

An AST linter (stdlib-only) enforcing the invariants the paper's results
depend on; see ``docs/STATIC_ANALYSIS.md`` for the rule catalogue and the
paper-level rationale behind each rule.

Programmatic use::

    from repro.devtools.datlint import lint_paths
    report = lint_paths([Path("src")])
    assert report.exit_code == 0, report.diagnostics

Command line::

    python -m repro.devtools.datlint src/ [--format=json] [--select=DAT001]
"""

from repro.devtools.datlint.context import FileContext
from repro.devtools.datlint.diagnostics import Diagnostic
from repro.devtools.datlint.registry import Rule, all_rules, register
from repro.devtools.datlint.runner import LintReport, lint_file, lint_paths

__all__ = [
    "Diagnostic",
    "FileContext",
    "LintReport",
    "Rule",
    "all_rules",
    "register",
    "lint_file",
    "lint_paths",
]

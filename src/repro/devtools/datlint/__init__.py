"""datlint — the reproduction's own static-analysis pass.

An AST linter (stdlib-only) enforcing the invariants the paper's results
depend on; see ``docs/STATIC_ANALYSIS.md`` for the rule catalogue and the
paper-level rationale behind each rule.

Programmatic use::

    from repro.devtools.datlint import lint_paths
    report = lint_paths([Path("src")])
    assert report.exit_code == 0, report.diagnostics

Command line::

    python -m repro.devtools.datlint src/ [--format=json] [--select=DAT001]
"""

from repro.devtools.datlint.context import FileContext
from repro.devtools.datlint.diagnostics import Diagnostic
from repro.devtools.datlint.program import ProgramContext, build_program
from repro.devtools.datlint.registry import (
    ProgramRule,
    Rule,
    all_program_rules,
    all_rules,
    register,
    register_program,
)
from repro.devtools.datlint.runner import LintReport, lint_file, lint_paths

__all__ = [
    "Diagnostic",
    "FileContext",
    "LintReport",
    "ProgramContext",
    "ProgramRule",
    "Rule",
    "all_program_rules",
    "all_rules",
    "build_program",
    "register",
    "register_program",
    "lint_file",
    "lint_paths",
]

"""Project-wide call graph and transitive blocking analysis.

Builds on the :class:`~repro.devtools.datlint.program.ProgramContext`
symbol table. Edges are resolved conservatively:

* ``helper(...)`` — a function of the same module, or one imported from a
  project module;
* ``self.method(...)`` — the enclosing class (or a resolvable project base
  class);
* ``obj.method(...)`` — when ``obj`` is a parameter/local/attribute whose
  project class type is known (constructor assignment or annotation).

Unresolvable calls simply contribute no edge — the analysis prefers
missing an edge over inventing one, because its consumers (transitive
DAT005) gate CI.

The blocking analysis seeds from the same primitive table as the
single-file DAT005 rule, then propagates reachability backwards over the
call graph, keeping one witness callee per function so diagnostics can
print the full chain (``f -> g -> time.sleep``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable

from repro.devtools.datlint.program import (
    ClassInfo,
    FunctionInfo,
    ProgramContext,
    attr_chain,
)

__all__ = [
    "CallGraph",
    "BlockingAnalysis",
    "TypeEnv",
    "build_call_graph",
    "analyze_blocking",
]

#: Dotted calls that block the calling thread (mirrors DAT005's table).
BLOCKING_CALLS = {
    "time.sleep",
    "socket.socket",
    "socket.create_connection",
    "select.select",
    "subprocess.run",
    "subprocess.check_output",
}

#: Attribute calls that are blocking socket/file primitives anywhere.
BLOCKING_METHODS = {"recv", "recvfrom", "accept", "sendall", "makefile"}


@dataclass
class CallGraph:
    """callers -> callees over resolved project functions."""

    program: ProgramContext
    #: caller qualname -> {callee qualname -> first call-site node}
    edges: dict[str, dict[str, ast.Call]] = field(default_factory=dict)
    #: caller qualname -> [(dotted text, node)] for primitive-level checks
    primitive_calls: dict[str, list[tuple[str | None, ast.Call]]] = field(
        default_factory=dict
    )

    def callees(self, qualname: str) -> dict[str, ast.Call]:
        return self.edges.get(qualname, {})


def _render(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _render(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


class TypeEnv:
    """Best-effort local type environment for one function body."""

    def __init__(self, program: ProgramContext, fn: FunctionInfo) -> None:
        self.program = program
        self.fn = fn
        self.vars: dict[str, str] = {}  # name -> class qualname
        args = fn.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is not None:
                resolved = program.resolve_class_annotation(
                    fn.module, arg.annotation
                )
                if resolved is not None:
                    self.vars[arg.arg] = resolved
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                resolved = program.resolve_constructed_class(fn.module, node.value)
                if resolved is not None:
                    self.vars.setdefault(node.targets[0].id, resolved)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                resolved = program.resolve_class_annotation(
                    fn.module, node.annotation
                )
                if resolved is not None:
                    self.vars.setdefault(node.target.id, resolved)

    def type_of_chain(self, chain: list[str]) -> str | None:
        """Resolve the class of ``a.b.c`` (all but the last segment)."""
        if not chain:
            return None
        head, rest = chain[0], chain[1:]
        if head == "self" and self.fn.cls is not None:
            current: str | None = self.fn.cls
        else:
            current = self.vars.get(head)
        for segment in rest:
            if current is None:
                return None
            info = self.program.classes.get(current)
            if info is None:
                return None
            current = None
            for cls in self.program.mro(info):
                if segment in cls.attr_types:
                    current = cls.attr_types[segment]
                    break
        return current


def _resolve_call(
    program: ProgramContext, env: TypeEnv, fn: FunctionInfo, call: ast.Call
) -> FunctionInfo | None:
    func = call.func
    if isinstance(func, ast.Name):
        target = program.resolve_name(fn.module, func.id)
        if target is not None and target in program.functions:
            return program.functions[target]
        # A constructor call edges into the class's __init__.
        info = program.resolve_class(fn.module, func.id)
        if info is not None:
            return program.lookup_method(info, "__init__")
        return None
    if isinstance(func, ast.Attribute):
        chain = attr_chain(func)
        if chain is None:
            return None
        receiver, method = chain[:-1], chain[-1]
        # ``module.function(...)`` via the import map.
        if len(receiver) == 1:
            imported = program.imports.get(fn.module, {}).get(receiver[0])
            if imported is not None:
                qual = f"{imported}.{method}"
                if qual in program.functions:
                    return program.functions[qual]
        owner_qual = env.type_of_chain(receiver)
        if owner_qual is not None:
            info = program.classes.get(owner_qual)
            if info is not None:
                return program.lookup_method(info, method)
    return None


def build_call_graph(program: ProgramContext) -> CallGraph:
    """Resolve every call site of every indexed function."""
    graph = CallGraph(program=program)
    for qualname, fn in program.functions.items():
        env = TypeEnv(program, fn)
        edges: dict[str, ast.Call] = {}
        primitives: list[tuple[str | None, ast.Call]] = []
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            primitives.append((_render(node.func), node))
            callee = _resolve_call(program, env, fn, node)
            if callee is not None and callee.qualname != qualname:
                edges.setdefault(callee.qualname, node)
        graph.edges[qualname] = edges
        graph.primitive_calls[qualname] = primitives
    return graph


@dataclass
class BlockingAnalysis:
    """Which functions (transitively) reach a blocking primitive."""

    #: qualname -> human-readable primitive (``time.sleep`` / ``.recv()``)
    direct: dict[str, str] = field(default_factory=dict)
    #: qualname -> witness callee qualname on a path to a blocking call
    via: dict[str, str] = field(default_factory=dict)

    def is_blocking(self, qualname: str) -> bool:
        return qualname in self.direct or qualname in self.via

    def chain(self, qualname: str, limit: int = 8) -> list[str]:
        """Witness path from ``qualname`` to the blocking primitive."""
        path = [qualname]
        current = qualname
        while current in self.via and len(path) < limit:
            current = self.via[current]
            path.append(current)
        if current in self.direct:
            path.append(self.direct[current])
        return path


def analyze_blocking(
    graph: CallGraph,
    barrier: "Callable[[str], bool] | None" = None,
) -> BlockingAnalysis:
    """Fixpoint of blocking reachability over the call graph.

    ``barrier(qualname)`` marks functions *sanctioned* to block (the
    real-time transports, CLI entry points, explicitly suppressed sites):
    they are neither seeded as blocking roots nor propagated through, so
    a library caller of ``UdpRpcTransport.close`` is not flagged for the
    transport's own sanctioned socket work.
    """
    analysis = BlockingAnalysis()
    sanctioned = barrier if barrier is not None else (lambda _qualname: False)
    for qualname, primitives in graph.primitive_calls.items():
        if sanctioned(qualname):
            continue
        fn = graph.program.functions.get(qualname)
        suppressions = fn.ctx.suppressions if fn is not None else None
        for dotted, node in primitives:
            if suppressions is not None and suppressions.is_suppressed(
                "DAT005", node.lineno
            ):
                continue  # the direct site is sanctioned; don't propagate
            if dotted in BLOCKING_CALLS:
                analysis.direct[qualname] = f"{dotted}()"
                break
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in BLOCKING_METHODS
            ):
                analysis.direct[qualname] = f".{node.func.attr}()"
                break
    # Reverse-propagate: a caller of a blocking function is blocking.
    reverse: dict[str, list[str]] = {}
    for caller, callees in graph.edges.items():
        for callee in callees:
            reverse.setdefault(callee, []).append(caller)
    frontier = list(analysis.direct)
    while frontier:
        current = frontier.pop()
        for caller in reverse.get(current, ()):
            if caller in analysis.direct or caller in analysis.via:
                continue
            if sanctioned(caller):
                continue  # sanctioned functions absorb, not propagate
            analysis.via[caller] = current
            frontier.append(caller)
    return analysis

"""The ``python -m repro.devtools.datlint`` command line.

Exit codes: 0 clean, 1 diagnostics found, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.devtools.datlint.registry import (
    all_program_rules,
    all_rules,
    rule_codes,
)
from repro.devtools.datlint.runner import lint_paths

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.datlint",
        description=(
            "Project-specific static analysis. Single-file rules: "
            "determinism (DAT001), id-space hygiene (DAT002), float "
            "equality (DAT003), library print (DAT004), blocking calls "
            "(DAT005), mutable defaults (DAT006), except hygiene "
            "(DAT007), sim-clock (DAT008), raw-rpc (DAT009). "
            "Whole-program rules: transitive blocking (DAT005), lock "
            "discipline (DAT010), resource lifecycle (DAT011), "
            "deterministic iteration (DAT012)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (directories recurse into *.py)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--warn-unused-suppressions",
        action="store_true",
        help=(
            "report stale `# datlint: disable=` comments (DAT013); "
            "incompatible with --select/--ignore, which would make every "
            "suppression of an unselected rule look stale"
        ),
    )
    return parser


def _resolve_rule_codes(
    parser: argparse.ArgumentParser, select: str | None, ignore: str | None
) -> list[str]:
    known = rule_codes()
    chosen = known
    if select:
        chosen = [code.strip().upper() for code in select.split(",") if code.strip()]
    if ignore:
        ignored = {code.strip().upper() for code in ignore.split(",")}
        chosen = [code for code in chosen if code not in ignored]
    unknown = sorted(set(chosen) - set(known))
    if unknown:
        parser.error(f"unknown rule code(s): {', '.join(unknown)}")
    return chosen


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name}")
            print(f"    {rule.rationale}")
        for rule in all_program_rules():
            print(f"{rule.code}  {rule.name}  [whole-program]")
            print(f"    {rule.rationale}")
        return 0

    if not args.paths:
        parser.error("no paths given (try: python -m repro.devtools.datlint src/)")

    if args.warn_unused_suppressions and (args.select or args.ignore):
        parser.error(
            "--warn-unused-suppressions needs a full-rule run; "
            "drop --select/--ignore"
        )

    missing = [str(path) for path in args.paths if not path.exists()]
    if missing:
        parser.error(f"path(s) do not exist: {', '.join(missing)}")

    codes = _resolve_rule_codes(parser, args.select, args.ignore)
    rules = [rule for rule in all_rules() if rule.code in codes]
    program_rules = [
        rule for rule in all_program_rules() if rule.code in codes
    ]
    report = lint_paths(
        args.paths,
        rules=rules,
        program_rules=program_rules,
        warn_unused_suppressions=args.warn_unused_suppressions,
    )

    if args.format == "json":
        print(
            json.dumps(
                {
                    "files_checked": report.files_checked,
                    "suppressed": report.suppressed,
                    "diagnostics": [d.to_json() for d in report.diagnostics],
                },
                indent=2,
            )
        )
    else:
        for diagnostic in report.diagnostics:
            print(diagnostic.format())
        summary = (
            f"datlint: {report.files_checked} file(s) checked, "
            f"{len(report.diagnostics)} finding(s), "
            f"{report.suppressed} suppressed"
        )
        print(summary, file=sys.stderr)

    return report.exit_code

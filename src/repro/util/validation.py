"""Argument-validation helpers shared by constructors across the library."""

from __future__ import annotations

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_range",
]


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_non_negative(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if not value >= 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_probability(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def check_range(name: str, value: float, low: float, high: float) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")

"""Seeded random-number plumbing.

Every stochastic component in the library takes either an integer seed or a
:class:`numpy.random.Generator`. These helpers normalize the two and derive
independent child streams so experiments are reproducible run-to-run while
sub-components stay statistically independent.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["ensure_rng", "derive_rng", "spawn_seeds", "RngMixin"]


def ensure_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` produces a fresh OS-entropy generator; an existing generator is
    passed through unchanged; an integer seeds a new PCG64 stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(rng: np.random.Generator, *keys: int) -> np.random.Generator:
    """Derive an independent child generator from ``rng`` and integer keys.

    The child stream is a deterministic function of the parent's state and
    the keys, so components that consume randomness in different orders do
    not perturb each other's streams.
    """
    seed_material = list(keys) + list(rng.integers(0, 2**63 - 1, size=2))
    return np.random.default_rng(np.random.SeedSequence(seed_material))


def spawn_seeds(seed: int | None, count: int) -> list[int]:
    """Return ``count`` independent 63-bit integer seeds derived from ``seed``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = ensure_rng(seed)
    return [int(s) for s in rng.integers(0, 2**63 - 1, size=count)]


class RngMixin:
    """Mixin storing a normalized generator as ``self._rng``."""

    def __init__(self, seed: int | np.random.Generator | None = None) -> None:
        self._rng = ensure_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        """The component's random generator."""
        return self._rng

    def _choice_index(self, weights: Sequence[float]) -> int:
        """Sample an index proportionally to non-negative ``weights``."""
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must have a positive sum")
        probabilities = np.asarray(weights, dtype=float) / total
        return int(self._rng.choice(len(probabilities), p=probabilities))

"""Small shared utilities: bit math, RNG plumbing, validation helpers."""

from repro.util.bits import (
    ceil_log2,
    floor_log2,
    is_power_of_two,
    next_power_of_two,
)
from repro.util.rng import RngMixin, derive_rng, ensure_rng, spawn_seeds
from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_probability,
    check_range,
)

__all__ = [
    "ceil_log2",
    "floor_log2",
    "is_power_of_two",
    "next_power_of_two",
    "RngMixin",
    "derive_rng",
    "ensure_rng",
    "spawn_seeds",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_range",
]

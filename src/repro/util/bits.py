"""Exact integer bit math used throughout the Chord/DAT layers.

The balanced-routing derivation (paper Sec. 3.4) leans on exact
``ceil(log2(.))`` arithmetic; floating point ``math.log2`` misrounds near
powers of two for large identifier spaces (``b=160``), so everything here is
implemented with integer bit operations.
"""

from __future__ import annotations

__all__ = [
    "ceil_log2",
    "floor_log2",
    "is_power_of_two",
    "next_power_of_two",
    "ceil_div",
    "cyclic_increment",
]


def floor_log2(value: int) -> int:
    """Return ``floor(log2(value))`` for a positive integer.

    >>> floor_log2(1), floor_log2(2), floor_log2(3), floor_log2(4)
    (0, 1, 1, 2)
    """
    if value <= 0:
        raise ValueError(f"floor_log2 requires a positive integer, got {value}")
    return value.bit_length() - 1


def ceil_log2(value: int) -> int:
    """Return ``ceil(log2(value))`` for a positive integer.

    >>> ceil_log2(1), ceil_log2(2), ceil_log2(3), ceil_log2(4), ceil_log2(5)
    (0, 1, 2, 2, 3)
    """
    if value <= 0:
        raise ValueError(f"ceil_log2 requires a positive integer, got {value}")
    return (value - 1).bit_length()


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is an exact power of two (1, 2, 4, ...)."""
    return value > 0 and (value & (value - 1)) == 0


def next_power_of_two(value: int) -> int:
    """Return the smallest power of two ``>= value`` (``value >= 1``).

    >>> next_power_of_two(1), next_power_of_two(5), next_power_of_two(8)
    (1, 8, 8)
    """
    if value <= 0:
        raise ValueError(f"next_power_of_two requires a positive integer, got {value}")
    return 1 << ceil_log2(value)


def cyclic_increment(value: int, modulus: int) -> int:
    """Advance a round-robin cursor: ``(value + 1) mod modulus``.

    The canonical helper for cursors that sweep a fixed-size table (finger
    slots, successor lists) so cursor arithmetic is distinguishable from
    identifier arithmetic, which must go through
    :class:`repro.chord.idspace.IdSpace`.

    >>> cyclic_increment(0, 4), cyclic_increment(3, 4)
    (1, 0)
    """
    if modulus <= 0:
        raise ValueError(f"modulus must be positive, got {modulus}")
    if not 0 <= value < modulus:
        raise ValueError(f"value {value} outside [0, {modulus})")
    return (value + 1) % modulus


def ceil_div(numerator: int, denominator: int) -> int:
    """Exact ``ceil(numerator / denominator)`` for non-negative integers."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    if numerator < 0:
        raise ValueError(f"numerator must be non-negative, got {numerator}")
    return -(-numerator // denominator)

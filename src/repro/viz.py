"""Plain-text visualization of rings and DAT trees.

Debugging aids used by the examples: an indented tree renderer (the shape
of Figs. 2(b)/5(b)), a ring occupancy bar, and a load histogram matching
the Fig. 8 rank plots. Everything is pure text — no plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Union

from repro.chord.ring import StaticRing
from repro.core.tree import DatTree
from repro.telemetry.hotspot import HotspotAccountant

#: Histogram input: precomputed per-node totals, or the accountant itself.
Loads = Union[Mapping[int, int], HotspotAccountant]

__all__ = ["render_tree", "render_ring", "render_load_histogram"]


def render_tree(tree: DatTree, max_nodes: int = 200, label: str = "N") -> str:
    """Indented top-down rendering of a DAT tree.

    >>> from repro.chord.idspace import IdSpace
    >>> from repro.chord.ring import StaticRing
    >>> from repro.core.builder import build_balanced_dat
    >>> ring = StaticRing(IdSpace(4), range(16))
    >>> print(render_tree(build_balanced_dat(ring, 0)))  # doctest: +ELLIPSIS
    N0
    ├── N14
    ...
    """
    children = tree.children_map()
    lines: list[str] = [f"{label}{tree.root}"]
    count = [1]

    def walk(node: int, prefix: str) -> None:
        kids = children.get(node, [])
        for index, child in enumerate(kids):
            if count[0] >= max_nodes:
                lines.append(f"{prefix}└── ... (truncated)")
                return
            last = index == len(kids) - 1
            connector = "└── " if last else "├── "
            lines.append(f"{prefix}{connector}{label}{child}")
            count[0] += 1
            walk(child, prefix + ("    " if last else "│   "))

    walk(tree.root, "")
    return "\n".join(lines)


def render_ring(ring: StaticRing, width: int = 64, mark: int | None = None) -> str:
    """One-line occupancy bar of the identifier circle.

    Each character covers ``2^bits / width`` identifiers: ``.`` empty,
    ``o`` one node, ``#`` several, ``@`` the ``mark`` node's bucket.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    buckets = [0] * width
    mark_bucket = None
    for node in ring:
        bucket = min(node * width // ring.space.size, width - 1)
        buckets[bucket] += 1
        if mark is not None and node == mark:
            mark_bucket = bucket
    chars = []
    for index, count in enumerate(buckets):
        if index == mark_bucket:
            chars.append("@")
        elif count == 0:
            chars.append(".")
        elif count == 1:
            chars.append("o")
        else:
            chars.append("#")
    return "[" + "".join(chars) + "]"


def render_load_histogram(
    loads: Loads, width: int = 50, max_rows: int = 20
) -> str:
    """Horizontal bar chart of per-node loads, sorted descending (Fig. 8a).

    ``loads`` is either a precomputed ``{node: total}`` mapping or a
    :class:`~repro.telemetry.hotspot.HotspotAccountant` (any transport's
    ``.stats``), read via its ``loads()`` snapshot. Rows beyond
    ``max_rows`` are folded into a final summary line.
    """
    if isinstance(loads, HotspotAccountant):
        loads = loads.loads()
    ranked = sorted(loads.items(), key=lambda item: (-item[1], item[0]))
    if not ranked:
        return "(no loads)"
    peak = max(load for _node, load in ranked) or 1
    lines = []
    for rank, (node, load) in enumerate(ranked[:max_rows]):
        bar = "#" * max(int(load / peak * width), 1 if load else 0)
        lines.append(f"rank {rank:>4}  node {node:>12}  {load:>6}  {bar}")
    if len(ranked) > max_rows:
        rest = ranked[max_rows:]
        total = sum(load for _node, load in rest)
        lines.append(
            f"... {len(rest)} more nodes, {total} messages total "
            f"(min {rest[-1][1]}, max {rest[0][1]})"
        )
    return "\n".join(lines)

"""Slim protocol-node block: a whole ring's routing state as shared arrays.

The object path gives every node a :class:`~repro.chord.node.ChordNode` with
its own finger list — fine to ~10^4 nodes, prohibitive at 10^5+. In
bulk-simulation mode the whole converged ring is represented once, here, as

* the sorted identifier vector (shared with :class:`~repro.chord.ring.StaticRing`
  / :class:`~repro.chord.ringarray.RingArray`), and
* the fastbuild finger matrix (``(n, bits)`` int64 — row ``i`` is node
  ``i``'s finger table), built with two ``searchsorted`` passes.

Per-node state is ~``8 * bits`` bytes of one shared matrix instead of a
Python object graph, and the protocol's parent rule runs for *all* nodes at
once (:meth:`ChordNodeBlock.key_parents`). :class:`MatrixFingerView` adapts
one row back to the :class:`~repro.chord.fingers.FingerLike` interface, so
scalar consumers (parent selection, routing probes, tests) can read the
block without materializing tables.

Bit-exactness contract: :meth:`ChordNodeBlock.key_parents` reproduces
``DatNodeService.parent_toward_key`` — the *key-addressed* Algorithm 1
rule, including the balanced scheme's float-estimated ``d0`` path through
:class:`~repro.core.limiting.FingerLimiter.for_gap` — for every node,
asserted in ``tests/unit/test_block.py`` and the protocol property suite.
(The root-addressed kernel in :mod:`repro.chord.fastbuild` is a different
rule: it measures eligibility against the root, not the key.)
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.chord.fastbuild import (
    FAST_PATH_MAX_BITS,
    _cw,
    _vectorized_ceil_log2,
    fast_finger_matrix,
)
from repro.chord.idspace import IdSpace
from repro.chord.ring import StaticRing
from repro.core.limiting import FingerLimiter
from repro.errors import IdentifierError, TreeError

__all__ = ["ChordNodeBlock", "MatrixFingerView", "balanced_limits"]


class MatrixFingerView:
    """One node's finger table as a view of the block's shared matrix.

    Implements :class:`~repro.chord.fingers.FingerLike`; query semantics
    are identical to :class:`~repro.chord.fingers.FingerTable` over the
    same entries (asserted in ``tests/unit/test_block.py``). No storage is
    copied — the view holds the row.
    """

    __slots__ = ("space", "owner", "_row")

    def __init__(self, space: IdSpace, owner: int, row: np.ndarray) -> None:
        self.space = space
        self.owner = owner
        self._row = row

    @property
    def successor(self) -> int:
        """Slot 0 — the owner's immediate successor."""
        return int(self._row[0])

    def finger(self, j: int) -> int:
        """Node in slot ``j`` (the first node succeeding ``owner + 2^j``)."""
        if not 0 <= j < self.space.bits:
            raise IdentifierError(f"finger index {j} outside [0, {self.space.bits})")
        return int(self._row[j])

    def closest_preceding(self, key: int, max_slot: int | None = None) -> int | None:
        """Finger that most closely precedes-or-reaches ``key`` from ``owner``.

        Same scan as :meth:`FingerTable.closest_preceding`: highest slot
        whose finger does not overshoot ``cw(owner, key)``, restricted to
        ``0..max_slot`` for the balanced scheme.
        """
        space = self.space
        target_distance = space.cw(self.owner, key)
        if target_distance == 0:
            return None
        top = space.bits - 1 if max_slot is None else min(max_slot, space.bits - 1)
        entries = self._row.tolist()
        for j in range(top, -1, -1):
            node = entries[j]
            if node == self.owner:
                continue
            if space.cw(self.owner, node) <= target_distance:
                return node
        return None

    def __len__(self) -> int:
        return len(self._row)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MatrixFingerView(owner={self.owner})"


def balanced_limits(x: np.ndarray, d0: float | Fraction) -> np.ndarray:
    """``g(x)`` for an array of distances, exactly.

    Vectorizes :func:`repro.core.limiting.finger_limit`: with
    ``d0 = p/q``, the limit is ``ceil_log2(max(ceil((x*q + 2p)/(3q)), 1))``.
    The integer path runs whenever the numerators provably fit in int64
    and the ceilings stay inside float64's exact range (always true for the
    power-of-two populations the scale benchmarks use, where ``q == 1``);
    otherwise each element goes through the scalar
    :class:`~repro.core.limiting.FingerLimiter`, trading speed for the
    same exact answers.
    """
    gap = d0 if isinstance(d0, Fraction) else Fraction(d0).limit_denominator(10**12)
    if gap <= 0:
        raise ValueError(f"d0 must be positive, got {d0}")
    x = np.asarray(x, dtype=np.int64)
    p, q = gap.numerator, gap.denominator
    x_max = int(x.max()) if x.size else 0
    if x_max * q + 2 * p < 2**62:
        numerator = x * np.int64(q) + np.int64(2 * p)
        m = np.maximum(-((-numerator) // np.int64(3 * q)), np.int64(1))
        m_max = int(m.max()) if m.size else 0
        if m_max < 2**53:
            return _vectorized_ceil_log2(m)
    limiter = FingerLimiter(d0=gap)
    return np.fromiter(
        (limiter(xi) for xi in x.tolist()), dtype=np.int64, count=x.size
    )


class ChordNodeBlock:
    """All protocol nodes of one converged ring, array-backed.

    Construction is two ``searchsorted`` passes over the sorted identifier
    vector (via :func:`~repro.chord.fastbuild.fast_finger_matrix`); the
    block is immutable and shared by every consumer — the slab protocol
    runner, finger views, and the scale benchmarks all read the same
    ``(n, bits)`` matrix.
    """

    __slots__ = ("space", "ids", "matrix")

    def __init__(self, space: IdSpace, ids: np.ndarray, matrix: np.ndarray) -> None:
        if matrix.shape != (len(ids), space.bits):
            raise TreeError(
                f"finger matrix shape {matrix.shape} does not match "
                f"({len(ids)} nodes, {space.bits} bits)"
            )
        self.space = space
        self.ids = ids
        self.matrix = matrix

    @classmethod
    def from_ring(cls, ring: StaticRing) -> "ChordNodeBlock":
        """Snapshot a converged ring (``bits <= FAST_PATH_MAX_BITS``)."""
        if ring.space.bits > FAST_PATH_MAX_BITS:
            raise TreeError(
                f"protocol block supports bits <= {FAST_PATH_MAX_BITS}, "
                f"got {ring.space.bits}; use the object path"
            )
        if len(ring) == 0:
            raise TreeError("protocol block requires a non-empty ring")
        return cls(
            space=ring.space,
            ids=ring.id_index().ids,
            matrix=fast_finger_matrix(ring),
        )

    def __len__(self) -> int:
        return int(self.ids.size)

    def index_of(self, ident: int) -> int:
        """Position of ``ident`` in the sorted identifier vector."""
        i = int(np.searchsorted(self.ids, np.int64(ident)))
        if i == len(self.ids) or int(self.ids[i]) != ident:
            raise IdentifierError(f"identifier {ident} is not in the block")
        return i

    def owner_index(self, key: int) -> int:
        """Position of ``successor(key)`` — the key's owner/root."""
        i = int(np.searchsorted(self.ids, np.int64(self.space.wrap(key))))
        return 0 if i == len(self.ids) else i

    def finger_view(self, i: int) -> MatrixFingerView:
        """Node ``i``'s finger table as a :class:`FingerLike` view."""
        return MatrixFingerView(self.space, int(self.ids[i]), self.matrix[i])

    def successors(self) -> np.ndarray:
        """Every node's immediate successor (matrix slot 0)."""
        return self.matrix[:, 0]

    def key_parents(
        self,
        key: int,
        scheme: str = "balanced",
        d0: float | Fraction | None = None,
    ) -> np.ndarray:
        """Every node's ``parent_toward_key(key)`` in one pass.

        Returns an int64 array aligned with :attr:`ids`: element ``i`` is
        the parent identifier node ``i`` pushes to, or ``-1`` where the
        scalar rule returns ``None`` (a lone ring — in a converged
        multi-node ring every node has a parent; the key's *owner* gets its
        own successor-ward parent too, exactly like the scalar rule, and
        callers exclude it because the owner finalizes instead of pushing).

        ``d0`` defaults to the overlay's estimate ``space.size / n`` —
        passed through :class:`FingerLimiter.for_gap` float conversion so
        balanced limits match ``DatNodeService`` bit-for-bit.
        """
        if scheme not in ("basic", "balanced"):
            raise ValueError(f"unknown scheme {scheme!r}")
        space = self.space
        mask = space.max_id
        n = len(self)
        x = _cw(mask, self.ids, np.broadcast_to(np.int64(key), self.ids.shape))
        finger_dist = _cw(mask, self.ids[:, np.newaxis], self.matrix)
        eligible = (finger_dist > 0) & (finger_dist <= x[:, np.newaxis])
        slots = np.arange(space.bits, dtype=np.int64)[np.newaxis, :]
        if scheme == "balanced":
            gap = space.size / n if d0 is None else d0
            limits = balanced_limits(x, gap)
            eligible &= slots <= limits[:, np.newaxis]
        best = np.where(eligible, slots, np.int64(-1)).max(axis=1)
        parents = self.matrix[np.arange(n), np.maximum(best, 0)].copy()
        # No eligible finger: fall back to the successor (the owner's
        # predecessor lands here), or no parent at all on a lone ring.
        fallback = best < 0
        successor = self.matrix[:, 0]
        parents[fallback] = np.where(
            successor[fallback] != self.ids[fallback], successor[fallback], np.int64(-1)
        )
        return parents

    def state_nbytes(self) -> int:
        """Bytes of array state held by the block (ids + finger matrix)."""
        return int(self.ids.nbytes + self.matrix.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ChordNodeBlock(n={len(self)}, bits={self.space.bits})"

"""Identifier probing for balanced identifier assignment (paper Sec. 3.5).

Randomly chosen identifiers give adjacent-gap ratios of ``O(log n)``, which
ruins the balanced DAT's constant branching factor. Adler et al. (STOC 2003)
proposed *identifier probing*: a joining node picks a random point, probes
``O(log n)`` neighbors of that point's successor, and splits the largest
owned interval among those probed. The max/min gap ratio then stays bounded
by a constant, and Sec. 5.2 shows the balanced DAT max branching becomes a
small constant (~4) under this scheme.

The prototype (Sec. 4) implements this at join time: the contacted successor
"splits the maximal interval of its fingers and returns the designated node
identifier to the joining node". :func:`probe_split_identifier` reproduces
that procedure against a ring snapshot; the protocol node calls the same
logic through its RPC layer.
"""

from __future__ import annotations

import numpy as np

from repro.chord.ring import StaticRing
from repro.util.bits import ceil_log2
from repro.util.rng import ensure_rng

__all__ = ["probe_neighbors", "probe_split_identifier", "default_probe_count"]


def default_probe_count(n_nodes: int, multiplier: float = 2.0) -> int:
    """Number of neighbors to probe: ``ceil(multiplier * log2(n))``, >= 1."""
    if n_nodes <= 1:
        return 1
    return max(1, int(np.ceil(multiplier * ceil_log2(max(n_nodes, 2)))))


def probe_neighbors(ring: StaticRing, start: int, count: int) -> list[int]:
    """``count`` consecutive nodes clockwise starting at ``successor(start)``.

    These are the neighbors whose owned intervals the joining node inspects.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    count = min(count, len(ring))
    neighbors = [ring.successor(start)]
    while len(neighbors) < count:
        neighbors.append(ring.successor_of_node(neighbors[-1]))
    return neighbors


def probe_split_identifier(
    ring: StaticRing,
    rng: int | np.random.Generator | None = None,
    probe_multiplier: float = 2.0,
) -> int:
    """Choose a join identifier by probing and splitting the largest interval.

    Procedure (Sec. 3.5 / Sec. 4):

    1. Draw a random point ``p`` in the identifier space.
    2. Probe ``ceil(probe_multiplier * log2(n))`` consecutive neighbors of
       ``successor(p)``.
    3. Among the probed nodes, find the one owning the largest interval
       (largest clockwise gap from its predecessor).
    4. Return the midpoint of that interval as the new node's identifier.

    The returned identifier is guaranteed not to collide with an existing
    node (the midpoint of a gap of length >= 2; length-1 gaps fall back to a
    fresh random draw, which only occurs in nearly-full tiny spaces).
    """
    generator = ensure_rng(rng)
    space = ring.space
    if len(ring) == 0:
        return int(generator.integers(0, space.size))

    point = int(generator.integers(0, space.size))
    count = default_probe_count(len(ring), probe_multiplier)
    candidates = probe_neighbors(ring, point, count)

    best_node = max(candidates, key=ring.gap_before)
    gap = ring.gap_before(best_node)
    if gap < 2:
        # Space is locally saturated; retry with fresh random points.
        for _ in range(64):
            candidate = int(generator.integers(0, space.size))
            if candidate not in ring:
                return candidate
        raise RuntimeError("identifier space saturated; cannot place new node")

    predecessor = ring.predecessor_of_node(best_node)
    return space.wrap(predecessor + gap // 2)

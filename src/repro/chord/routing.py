"""Greedy Chord finger routing (paper Sec. 3.1).

``finger_route(ring, source, key)`` reproduces the lookup path
``f_{u,v} = <w_0, ..., w_q>`` where each hop forwards to the finger that most
closely precedes the key, terminating at ``v = successor(key)``. The basic
DAT (Sec. 3.2) is exactly the union of these paths toward a rendezvous key;
the centralized baseline counts per-node load along them.

This is the *analytical* routing model (pure functions over a converged
:class:`~repro.chord.ring.StaticRing`). The live equivalent — recursive
``lookup`` messages with a deadline and reply correlation — runs in
:class:`~repro.chord.node.ChordProtocolNode` on top of the
:mod:`repro.net` session layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chord.fingers import FingerTable
from repro.chord.ring import StaticRing
from repro.errors import RoutingError

__all__ = ["RouteResult", "closest_preceding_finger", "finger_route", "route_lengths"]


@dataclass(frozen=True)
class RouteResult:
    """The outcome of one finger-routed lookup."""

    key: int
    path: tuple[int, ...] = field(default_factory=tuple)

    @property
    def source(self) -> int:
        return self.path[0]

    @property
    def destination(self) -> int:
        return self.path[-1]

    @property
    def hops(self) -> int:
        """Number of messages: ``len(path) - 1``."""
        return len(self.path) - 1


def closest_preceding_finger(
    table: FingerTable, key: int, max_slot: int | None = None
) -> int | None:
    """The owner's best next hop toward ``key`` (None if no finger precedes it).

    Thin wrapper over :meth:`FingerTable.closest_preceding` so callers that
    only hold a table (protocol nodes) share one implementation with the
    static model.
    """
    return table.closest_preceding(key, max_slot=max_slot)


def finger_route(
    ring: StaticRing,
    source: int,
    key: int,
    tables: dict[int, FingerTable] | None = None,
) -> RouteResult:
    """Route from ``source`` to ``successor(key)`` via greedy finger routing.

    Parameters
    ----------
    ring:
        Converged ring answering successor queries.
    source:
        Identifier of the originating node (must be in the ring).
    key:
        Lookup key.
    tables:
        Optional pre-built finger tables (saves recomputation across many
        routes, e.g. when the centralized baseline routes from every node).

    Returns
    -------
    RouteResult
        Path ``<source, ..., successor(key)>``. A source that is itself the
        key's successor yields a single-element path (0 hops).
    """
    space = ring.space
    destination = ring.successor(key)
    path = [source]
    current = source
    # Each hop at least halves the remaining clockwise distance, so b+1
    # iterations suffice on any converged ring; more means a table bug.
    for _ in range(space.bits + 1):
        if current == destination:
            return RouteResult(key=key, path=tuple(path))
        table = tables[current] if tables is not None else ring.finger_table(current)
        nxt = table.closest_preceding(key)
        if nxt is None or nxt == current:
            # No finger precedes the key: the destination is the immediate
            # successor of the current node.
            nxt = ring.successor_of_node(current)
        if space.cw(current, nxt) > space.cw(current, key) and nxt != destination:
            raise RoutingError(
                f"hop {current}->{nxt} overshoots key {key} (dest {destination})"
            )
        path.append(nxt)
        current = nxt
    raise RoutingError(
        f"lookup for key {key} from {source} exceeded {space.bits + 1} hops"
    )


def route_lengths(
    ring: StaticRing, key: int, tables: dict[int, FingerTable] | None = None
) -> dict[int, int]:
    """Hop count from every node to ``successor(key)``.

    Used to validate the ``O(log n)`` lookup bound and the basic-DAT height
    (the tree height equals the longest finger route, Sec. 3.3).
    """
    if tables is None:
        tables = ring.all_finger_tables()
    return {
        node: finger_route(ring, node, key, tables=tables).hops for node in ring
    }

"""Chord finger tables (paper Sec. 3.1 and 4).

A node ``v`` keeps ``b`` fingers; the 0-indexed finger ``j`` is the first
node that succeeds ``v + 2^j`` on the circle (the paper indexes from 1 with
offset ``2^{j-1}`` — same table, shifted index). The prototype additionally
caches *fingers of fingers* (FoF, Sec. 4) which the protocol layer uses to
shortcut child discovery; :class:`FingerTable` supports attaching that layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.chord.idspace import IdSpace
from repro.errors import IdentifierError

__all__ = ["FingerLike", "FingerTable"]


@runtime_checkable
class FingerLike(Protocol):
    """What parent selection actually needs from a finger table.

    Both :class:`FingerTable` (per-node object, the oracle path) and
    :class:`repro.chord.block.MatrixFingerView` (a row of the shared
    fastbuild matrix, the bulk-simulation path) satisfy this; protocol
    services (:mod:`repro.core.service`, :mod:`repro.core.parent`) are
    typed against it so either representation plugs in.
    """

    space: IdSpace
    owner: int

    @property
    def successor(self) -> int:
        """Slot 0 — the owner's immediate successor."""
        ...

    def closest_preceding(self, key: int, max_slot: int | None = None) -> int | None:
        """Finger that most closely precedes-or-reaches ``key`` from ``owner``."""
        ...


@dataclass
class FingerTable:
    """The finger table of one node.

    Fingers are stored deduplicated-per-slot: slot ``j`` holds the node
    identifier succeeding ``owner + 2^j``. Several slots commonly point at
    the same node on sparse rings; iteration helpers expose both the raw
    slots and the distinct finger set.
    """

    space: IdSpace
    owner: int
    entries: list[int] = field(default_factory=list)
    fingers_of_fingers: dict[int, list[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.space.validate(self.owner)
        if self.entries and len(self.entries) != self.space.bits:
            raise IdentifierError(
                f"finger table needs {self.space.bits} slots, got {len(self.entries)}"
            )
        for entry in self.entries:
            self.space.validate(entry)

    @classmethod
    def trusted(
        cls,
        space: IdSpace,
        owner: int,
        entries: list[int],
        fingers_of_fingers: dict[int, list[int]] | None = None,
    ) -> "FingerTable":
        """Construct without per-entry validation (hot-path builder).

        ``ChordNode.finger_table`` assembles a table on every parent
        selection from entries that are already space-validated; re-checking
        ``bits`` entries per call made table construction O(bits) of pure
        overhead. Callers own the invariant that every entry (and the
        owner) is a valid identifier of ``space``.
        """
        table = cls.__new__(cls)
        table.space = space
        table.owner = owner
        table.entries = entries
        table.fingers_of_fingers = (
            fingers_of_fingers if fingers_of_fingers is not None else {}
        )
        return table

    # ------------------------------------------------------------------ #

    def finger(self, j: int) -> int:
        """Node in slot ``j`` (the first node succeeding ``owner + 2^j``)."""
        if not 0 <= j < self.space.bits:
            raise IdentifierError(f"finger index {j} outside [0, {self.space.bits})")
        return self.entries[j]

    def start(self, j: int) -> int:
        """Start of the j-th finger interval, ``owner + 2^j``."""
        return self.space.finger_start(self.owner, j)

    @property
    def successor(self) -> int:
        """Slot 0 — the owner's immediate successor."""
        return self.entries[0]

    def slots(self) -> list[tuple[int, int]]:
        """All ``(j, node)`` pairs."""
        return list(enumerate(self.entries))

    def distinct_fingers(self) -> list[int]:
        """Distinct finger nodes in slot order (deduplicated, owner excluded)."""
        seen: set[int] = set()
        out: list[int] = []
        for node in self.entries:
            if node != self.owner and node not in seen:
                seen.add(node)
                out.append(node)
        return out

    # ------------------------------------------------------------------ #
    # Queries used by routing / DAT parent selection
    # ------------------------------------------------------------------ #

    def closest_preceding(self, key: int, max_slot: int | None = None) -> int | None:
        """Finger that most closely precedes-or-reaches ``key`` from ``owner``.

        Scans slots from the largest eligible index downward and returns the
        first finger ``f`` with ``cw(owner, f) <= cw(owner, key)`` — i.e. a
        finger that does not overshoot the key. Returns ``None`` when every
        finger overshoots (then the owner itself is the last hop before the
        key's successor).

        ``max_slot`` restricts the scan to slots ``0..max_slot`` — this is
        exactly the hook the balanced routing scheme (paper Sec. 3.4) uses
        to limit fingers to those at most ``2^{g(x)}`` away.
        """
        space = self.space
        target_distance = space.cw(self.owner, key)
        if target_distance == 0:
            return None
        top = self.space.bits - 1 if max_slot is None else min(max_slot, space.bits - 1)
        for j in range(top, -1, -1):
            node = self.entries[j]
            if node == self.owner:
                continue
            if space.cw(self.owner, node) <= target_distance:
                return node
        return None

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FingerTable(owner={self.owner}, entries={self.entries})"

"""The b-bit circular Chord identifier space (paper Sec. 3.1).

Identifiers live in ``[0, 2^b)`` arranged on a cycle. The paper defines
``DIST(i1, i2) = (i1 + 2^b - i2) mod 2^b`` but then uses both orientations in
different sections (the Algorithm 1 example computes ``x = (k - i) mod 2^b``
for node ``i`` and key ``k``). To avoid that ambiguity this module exposes
one explicitly-named primitive:

``cw(a, b)`` — the number of clockwise steps from ``a`` to ``b``, i.e.
``(b - a) mod 2^b``. All DAT formulas in :mod:`repro.core` are written in
terms of ``cw``; DESIGN.md Sec. 5 records the mapping to the paper's
notation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IdentifierError

__all__ = ["IdSpace"]


@dataclass(frozen=True)
class IdSpace:
    """Arithmetic over a ``bits``-bit circular identifier space.

    Parameters
    ----------
    bits:
        Identifier width ``b``; identifiers are integers in ``[0, 2^b)``.
        Chord with SHA-1 uses ``b=160``; simulations typically use smaller
        spaces (the paper's worked examples use ``b=4``).
    """

    bits: int

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 512:
            raise IdentifierError(f"bits must be in [1, 512], got {self.bits}")

    @property
    def size(self) -> int:
        """Number of identifiers, ``2^bits``."""
        return 1 << self.bits

    @property
    def max_id(self) -> int:
        """Largest valid identifier, ``2^bits - 1``."""
        return self.size - 1

    def contains(self, ident: int) -> bool:
        """True if ``ident`` is a valid identifier in this space."""
        return isinstance(ident, int) and 0 <= ident < self.size

    def validate(self, ident: int) -> int:
        """Return ``ident`` unchanged, raising :class:`IdentifierError` if invalid."""
        if not self.contains(ident):
            raise IdentifierError(
                f"identifier {ident!r} outside [0, 2^{self.bits})"
            )
        return ident

    def wrap(self, value: int) -> int:
        """Reduce an arbitrary integer into the space (mod ``2^bits``)."""
        return value & self.max_id

    # ------------------------------------------------------------------ #
    # Distances
    # ------------------------------------------------------------------ #

    def cw(self, a: int, b: int) -> int:
        """Clockwise distance from ``a`` to ``b``: ``(b - a) mod 2^bits``.

        ``cw(a, a) == 0`` and ``cw(a, b) + cw(b, a) == 2^bits`` for
        ``a != b``.
        """
        return (b - a) & self.max_id

    def ccw(self, a: int, b: int) -> int:
        """Counter-clockwise distance from ``a`` to ``b`` (= ``cw(b, a)``)."""
        return (a - b) & self.max_id

    def ring_distance(self, a: int, b: int) -> int:
        """Shortest distance around the ring between ``a`` and ``b``."""
        forward = self.cw(a, b)
        return min(forward, self.size - forward) if forward else 0

    # ------------------------------------------------------------------ #
    # Intervals on the circle
    # ------------------------------------------------------------------ #

    def in_open(self, x: int, a: int, b: int) -> bool:
        """True if ``x`` lies in the open clockwise interval ``(a, b)``.

        When ``a == b`` the interval is the whole circle minus ``a`` (the
        standard Chord convention, needed for one-node rings).
        """
        if a == b:
            return x != a
        return 0 < self.cw(a, x) < self.cw(a, b)

    def in_half_open_right(self, x: int, a: int, b: int) -> bool:
        """True if ``x`` lies in the clockwise interval ``(a, b]``.

        When ``a == b`` every ``x`` qualifies (whole circle), matching
        Chord's successor test on a one-node ring.
        """
        if a == b:
            return True
        return 0 < self.cw(a, x) <= self.cw(a, b)

    def in_half_open_left(self, x: int, a: int, b: int) -> bool:
        """True if ``x`` lies in the clockwise interval ``[a, b)``."""
        if a == b:
            return True
        return self.cw(a, x) < self.cw(a, b)

    def in_closed(self, x: int, a: int, b: int) -> bool:
        """True if ``x`` lies in the clockwise interval ``[a, b]``."""
        if a == b:
            return x == a
        return self.cw(a, x) <= self.cw(a, b)

    # ------------------------------------------------------------------ #
    # Finger offsets (paper Sec. 3.3: FINGER+ / FINGER-)
    # ------------------------------------------------------------------ #

    def finger_start(self, ident: int, j: int) -> int:
        """Identifier ``ident + 2^j`` (0-indexed finger ``j``'s start).

        Note the paper indexes fingers from 1 with offset ``2^{j-1}``; we use
        0-indexed ``j`` with offset ``2^j`` throughout (``0 <= j < bits``).
        """
        if not 0 <= j < self.bits:
            raise IdentifierError(f"finger index {j} outside [0, {self.bits})")
        return self.wrap(ident + (1 << j))

    def inbound_finger_point(self, ident: int, j: int) -> int:
        """Identifier ``ident - 2^j`` — where the j-th inbound finger sits.

        A node at exactly ``ident - 2^j`` has ``ident`` as its j-th
        outbound-finger start (paper's ``FINGER-(v, j)``).
        """
        if not 0 <= j < self.bits:
            raise IdentifierError(f"finger index {j} outside [0, {self.bits})")
        return self.wrap(ident - (1 << j))

    def mean_gap(self, n_nodes: int) -> float:
        """Mean inter-node distance ``d0 = 2^bits / n`` for ``n`` nodes.

        This is the ``d0`` in the paper's ``B(i, n)`` and ``g(x)`` formulas
        ("the distance between two adjacent nodes" under even spacing).
        """
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        return self.size / n_nodes

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"IdSpace(bits={self.bits})"

"""Identifier assignment strategies for populating rings.

Three strategies cover everything the evaluation needs:

* ``random``  — i.i.d. uniform identifiers (plain Chord joins). Adjacent-gap
  ratio grows as ``O(log n)``.
* ``uniform`` — perfectly even spacing ``i * 2^b / n`` (the idealized case
  the balanced-DAT theory is proved under, Sec. 3.4–3.5).
* ``probing`` — incremental joins with Adler-style identifier probing
  (Sec. 3.5); gap ratio bounded by a constant.

Every strategy returns a fully-populated :class:`StaticRing`; the probing
strategy builds it join-by-join since each choice depends on the current
membership.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

import numpy as np

from repro.chord.idspace import IdSpace
from repro.chord.probing import probe_split_identifier
from repro.chord.ring import StaticRing
from repro.chord.ringarray import ARRAY_MAX_BITS, fast_probing_ids
from repro.util.rng import ensure_rng

__all__ = [
    "IdAssigner",
    "RandomIdAssigner",
    "UniformIdAssigner",
    "ProbingIdAssigner",
    "PROBING_FAST_THRESHOLD",
    "make_assigner",
]

#: Ring size at which probing construction switches to the bisect fast path.
PROBING_FAST_THRESHOLD = 4096


class IdAssigner(ABC):
    """Strategy producing ``n`` node identifiers in a given space."""

    #: Registry name used by :func:`make_assigner` and experiment configs.
    name: str = "abstract"

    @abstractmethod
    def build_ring(
        self, space: IdSpace, n_nodes: int, rng: int | np.random.Generator | None = None
    ) -> StaticRing:
        """Return a ring with ``n_nodes`` distinct identifiers."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


class RandomIdAssigner(IdAssigner):
    """I.i.d. uniform random identifiers (standard Chord join)."""

    name = "random"

    def build_ring(
        self, space: IdSpace, n_nodes: int, rng: int | np.random.Generator | None = None
    ) -> StaticRing:
        if n_nodes < 0:
            raise ValueError(f"n_nodes must be non-negative, got {n_nodes}")
        if n_nodes > space.size:
            raise ValueError(
                f"cannot place {n_nodes} distinct nodes in a space of {space.size}"
            )
        generator = ensure_rng(rng)
        chosen: set[int] = set()
        # Rejection-sample; spaces are sized >> n in every experiment so the
        # expected number of redraws is negligible.
        while len(chosen) < n_nodes:
            need = n_nodes - len(chosen)
            draws = generator.integers(0, space.size, size=max(need, 16))
            chosen.update(int(d) for d in draws)
            while len(chosen) > n_nodes:
                chosen.pop()
        return StaticRing(space, chosen)


class UniformIdAssigner(IdAssigner):
    """Perfectly even spacing — the theory's 'evenly distributed' case.

    Node ``i`` receives identifier ``floor(i * 2^b / n) + offset``. With
    ``n`` a power of two and ``offset=0`` this is exact even spacing, the
    precondition of the branching-factor theorems.
    """

    name = "uniform"

    def __init__(self, offset: int = 0) -> None:
        self.offset = offset

    def build_ring(
        self, space: IdSpace, n_nodes: int, rng: int | np.random.Generator | None = None
    ) -> StaticRing:
        if n_nodes < 0:
            raise ValueError(f"n_nodes must be non-negative, got {n_nodes}")
        if n_nodes > space.size:
            raise ValueError(
                f"cannot place {n_nodes} distinct nodes in a space of {space.size}"
            )
        idents = [
            space.wrap((i * space.size) // n_nodes + self.offset)
            for i in range(n_nodes)
        ]
        return StaticRing(space, idents)


class ProbingIdAssigner(IdAssigner):
    """Incremental joins with identifier probing (Sec. 3.5).

    Each join probes ``ceil(probe_multiplier * log2(n))`` neighbors of a
    random point and splits the largest owned interval among them.

    Rings of at least :data:`PROBING_FAST_THRESHOLD` nodes are built
    through :func:`repro.chord.ringarray.fast_probing_ids`, a bisect-based
    replica of the join-by-join procedure that consumes the RNG
    identically — bit-identical membership, an order of magnitude faster
    (the property suite asserts the identity).
    """

    name = "probing"

    def __init__(self, probe_multiplier: float = 2.0) -> None:
        if probe_multiplier <= 0:
            raise ValueError(
                f"probe_multiplier must be positive, got {probe_multiplier}"
            )
        self.probe_multiplier = probe_multiplier

    def build_ring(
        self, space: IdSpace, n_nodes: int, rng: int | np.random.Generator | None = None
    ) -> StaticRing:
        if n_nodes < 0:
            raise ValueError(f"n_nodes must be non-negative, got {n_nodes}")
        if n_nodes > space.size:
            raise ValueError(
                f"cannot place {n_nodes} distinct nodes in a space of {space.size}"
            )
        generator = ensure_rng(rng)
        if n_nodes >= PROBING_FAST_THRESHOLD:
            ids = fast_probing_ids(
                space, n_nodes, rng=generator, probe_multiplier=self.probe_multiplier
            )
            if space.bits <= ARRAY_MAX_BITS:
                return StaticRing.from_sorted_ids(space, ids)
            return StaticRing(space, ids)
        ring = StaticRing(space)
        for _ in range(n_nodes):
            ident = probe_split_identifier(
                ring, generator, probe_multiplier=self.probe_multiplier
            )
            ring.add(ident)
        return ring


_ASSIGNERS: dict[str, type[IdAssigner]] = {
    RandomIdAssigner.name: RandomIdAssigner,
    UniformIdAssigner.name: UniformIdAssigner,
    ProbingIdAssigner.name: ProbingIdAssigner,
}


def make_assigner(name: str, **kwargs: Any) -> IdAssigner:
    """Instantiate an assigner by registry name (``random``/``uniform``/``probing``)."""
    try:
        cls = _ASSIGNERS[name]
    except KeyError:
        raise ValueError(
            f"unknown id assigner {name!r}; choose from {sorted(_ASSIGNERS)}"
        ) from None
    return cls(**kwargs)

"""Structural types for objects that host protocol services.

The broadcast, finger-cache, and DAT-service layers are written against a
*duck-typed* host (historically "an object with ``ident``, ``space``,
``transport``, ``upcalls``").  These :class:`~typing.Protocol` classes make
that contract explicit so the layers type-check strictly while static test
hosts keep working without inheriting anything.
"""

from __future__ import annotations

from typing import Callable, MutableMapping, Optional, Protocol

from repro.chord.fingers import FingerTable
from repro.chord.idspace import IdSpace
from repro.sim.messages import Message
from repro.sim.transport import Transport

__all__ = ["ChordHost", "FingeredHost"]

_Upcall = Callable[[Message], Optional[Message]]


class ChordHost(Protocol):
    """Minimal surface a node must expose to host a protocol service.

    ``upcalls`` is any mutable kind->handler mapping — a plain dict or a
    :class:`repro.net.UpcallRegistry` both satisfy it.
    """

    ident: int
    space: IdSpace
    transport: Transport
    upcalls: MutableMapping[str, _Upcall]


class FingeredHost(ChordHost, Protocol):
    """A host that can additionally report its live finger table."""

    def finger_table(self) -> FingerTable:
        """The node's current finger table."""
        ...

"""Vectorized finger-table and DAT-parent construction (NumPy fast path).

The scalar builders in :mod:`repro.chord.ring` / :mod:`repro.core.builder`
are the reference implementation; this module recomputes the same results
with array operations for large rings (8192-node builds drop from ~0.5 s
to tens of milliseconds). Equivalence against the scalar path is asserted
test-for-test in ``tests/unit/test_fastbuild.py`` — if the two ever
disagree, the scalar path wins.

Restrictions: identifier width ``bits <= 48`` so that the exact integer
``ceil(log2(.))`` trick below stays within float64's 2^53 exact-integer
range. Wider spaces silently fall back to the scalar builders via
:func:`build_dat_fast`.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.chord.ring import StaticRing
from repro.core.builder import build_dat
from repro.core.builder import DatScheme
from repro.core.tree import DatTree, TreeStats
from repro.errors import TreeError
from repro.util.bits import ceil_div

__all__ = [
    "FAST_PATH_MAX_BITS",
    "DatTreeArrays",
    "fast_finger_matrix",
    "fast_basic_parents",
    "fast_balanced_parents",
    "fast_tree_arrays",
    "fast_tree_stats",
    "fast_tree_height",
    "fast_centralized_load_array",
    "build_dat_fast",
]

#: Widest identifier space the vectorized path supports exactly.
FAST_PATH_MAX_BITS = 48


def _require_fast_capable(ring: StaticRing) -> None:
    if ring.space.bits > FAST_PATH_MAX_BITS:
        raise TreeError(
            f"fast path supports bits <= {FAST_PATH_MAX_BITS}, "
            f"got {ring.space.bits}; use the scalar builders"
        )
    if len(ring) == 0:
        raise TreeError("fast path requires a non-empty ring")


def _resolve_matrix(ring: StaticRing, matrix: np.ndarray | None) -> np.ndarray:
    """Use a caller-supplied finger matrix after a cheap shape check.

    Callers that build many trees on one ring (``DatTreeBuilder``,
    ``DatForest``, the incremental engine) pass the cached matrix so the
    two searchsorted passes run once per *ring*, not once per *tree*.
    """
    if matrix is None:
        return fast_finger_matrix(ring)
    if matrix.shape != (len(ring), ring.space.bits):
        raise TreeError(
            f"finger matrix shape {matrix.shape} does not match the ring "
            f"({len(ring)} nodes, {ring.space.bits} bits)"
        )
    return matrix


def fast_finger_matrix(ring: StaticRing) -> np.ndarray:
    """All finger tables as an ``(n, bits)`` int64 matrix.

    Row ``i``, column ``j`` is ``successor(nodes[i] + 2^j)`` — identical to
    :meth:`StaticRing.finger_entries` for every node, computed with two
    searchsorted passes instead of ``n * bits`` bisects.
    """
    _require_fast_capable(ring)
    space = ring.space
    nodes = ring.id_index().ids
    offsets = (np.int64(1) << np.arange(space.bits, dtype=np.int64))[np.newaxis, :]
    targets = (nodes[:, np.newaxis] + offsets) & np.int64(space.max_id)
    indices = np.searchsorted(nodes, targets, side="left")
    indices[indices == len(nodes)] = 0  # wrap past the top of the ring
    return nodes[indices]


def _cw(space_mask: int, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vectorized clockwise distance ``(b - a) mod 2^bits``."""
    return (b - a) & np.int64(space_mask)


def _vectorized_ceil_log2(values: np.ndarray) -> np.ndarray:
    """Exact ``ceil(log2(v))`` for positive int64 values < 2^53.

    ``frexp`` decomposes ``v = m * 2^e`` with ``m`` in [0.5, 1); the
    decomposition is exact for integers below 2^53, so
    ``ceil(log2(v)) = e - 1`` when ``v`` is a power of two (m == 0.5) and
    ``e`` otherwise — no floating-point rounding anywhere.
    """
    mantissa, exponent = np.frexp(values.astype(np.float64))
    result = exponent.astype(np.int64)
    # frexp mantissae are exact binary fractions, so 0.5 is representable
    # and the power-of-two test is safe as an exact comparison.
    result[mantissa == 0.5] -= 1  # datlint: disable=DAT003
    return np.maximum(result, 0)


def _parents_from_best(
    nodes: np.ndarray, fingers: np.ndarray, best: np.ndarray, root: int
) -> dict[int, int]:
    """Assemble the parent dict from per-node best slots, branch-free.

    The root row is masked out with array ops and the (node, parent) pairs
    are materialized through two ``tolist()`` calls — no per-node Python
    conditional in the hot loop.
    """
    mask = nodes != np.int64(root)
    best_masked = best[mask]
    if best_masked.size and int(best_masked.min()) < 0:
        bad = nodes[mask][best_masked < 0]
        raise TreeError(f"node {int(bad[0])} has no eligible finger toward {root}")
    chosen = fingers[np.nonzero(mask)[0], best_masked]
    return dict(zip(nodes[mask].tolist(), chosen.tolist()))


def _best_parent_slots(
    ring: StaticRing,
    key: int,
    scheme: DatScheme,
    matrix: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Per-node best finger slot under ``scheme`` — the shared kernel.

    Returns ``(nodes, fingers, best, root)`` where ``best[i]`` is the
    highest eligible slot of node ``i`` (-1 when none is, which is legal
    only for the root row). The highest eligible slot is the farthest
    non-overshooting finger — exactly the scalar parent rule — because
    finger distance is monotone in the slot index.
    """
    _require_fast_capable(ring)
    space = ring.space
    mask = space.max_id
    nodes = ring.id_index().ids
    root = np.int64(ring.successor(key))
    fingers = _resolve_matrix(ring, matrix)

    finger_dist = _cw(mask, nodes[:, np.newaxis], fingers)
    x = _cw(mask, nodes, np.broadcast_to(root, nodes.shape))

    eligible = (finger_dist <= x[:, np.newaxis]) & (finger_dist > 0)
    slots = np.arange(space.bits, dtype=np.int64)[np.newaxis, :]
    if scheme is DatScheme.BALANCED:
        q = np.maximum(_exact_ceil_q(x, len(ring), space.size), 1)
        limits = _vectorized_ceil_log2(q)
        eligible &= slots <= limits[:, np.newaxis]
    slot_index = np.where(eligible, slots, -1)
    best = slot_index.max(axis=1)
    return nodes, fingers, best, int(root)


def fast_basic_parents(
    ring: StaticRing, key: int, matrix: np.ndarray | None = None
) -> dict[int, int]:
    """Basic-DAT parent map, vectorized; equals the scalar builder's.

    ``matrix`` optionally supplies a precomputed :func:`fast_finger_matrix`
    shared across rendezvous keys.
    """
    nodes, fingers, best, root = _best_parent_slots(
        ring, key, DatScheme.BASIC, matrix
    )
    return _parents_from_best(nodes, fingers, best, root)


def _exact_ceil_q(x: np.ndarray, n: int, size: int) -> np.ndarray:
    """Exact ``q = ceil((x*n + 2*size) / (3*n))`` as an int64 array.

    Vectorized when ``max(x)*n + 2*size`` provably fits in int64; otherwise
    (possible only for spaces near the 48-bit fast-path limit combined with
    very large rings) each element is computed with arbitrary-precision
    Python integers, trading speed for exactness.
    """
    x_max = int(x.max()) if x.size else 0
    if x_max * n + 2 * size < 2**63:
        numerator = x * np.int64(n) + np.int64(2 * size)
        return -((-numerator) // np.int64(3 * n))
    return np.array(
        [ceil_div(int(xi) * n + 2 * size, 3 * n) for xi in x], dtype=np.int64
    )


def fast_balanced_parents(
    ring: StaticRing, key: int, matrix: np.ndarray | None = None
) -> dict[int, int]:
    """Balanced-DAT parent map (Algorithm 1), vectorized.

    Uses the exact mean gap ``d0 = 2^bits / n`` like the scalar default.
    The limit ``g(x) = ceil(log2((x + 2*d0)/3))`` is evaluated with pure
    integer arithmetic: ``q = ceil((x*n + 2*2^bits) / (3n))`` then an exact
    ``ceil(log2(q))``, matching
    :func:`repro.core.limiting.finger_limit` bit-for-bit. ``matrix``
    optionally supplies a precomputed :func:`fast_finger_matrix` shared
    across rendezvous keys.
    """
    nodes, fingers, best, root = _best_parent_slots(
        ring, key, DatScheme.BALANCED, matrix
    )
    return _parents_from_best(nodes, fingers, best, root)


class DatTreeArrays:
    """Index-based DAT snapshot: every metric as an array, no per-node objects.

    The tree lives entirely in three pieces of state — the sorted node
    vector, a parent-*index* array (``parent_index[i]`` is the position of
    node ``i``'s parent in ``nodes``; the root points at itself), and the
    root's position. All Sec. 5.2 / Fig. 7-8 measurements derive from them
    with whole-array operations:

    * branching factors — one ``bincount`` of the parent indices;
    * depths/height — absorbing parent-pointer chase, ``height`` passes of
      one fancy-index each;
    * per-round message loads — ``children + 1`` (root: ``children``);
    * subtree sizes — bottom-up accumulation, one scatter-add per depth
      level.

    Results are element-for-element identical to the :class:`DatTree`
    equivalents over the same membership (asserted in
    ``tests/property/test_prop_scale.py``); ``stats()`` mirrors
    :meth:`DatTree.stats` down to float operation order so the summary is
    bit-identical too. Arrays are aligned with ``nodes`` (ascending
    identifier order) and cached after first computation; treat them as
    read-only views.
    """

    __slots__ = ("nodes", "parent_index", "root_index", "key", "scheme",
                 "_counts", "_depths")

    def __init__(
        self,
        nodes: np.ndarray,
        parent_index: np.ndarray,
        root_index: int,
        key: int,
        scheme: DatScheme,
    ) -> None:
        self.nodes = nodes
        self.parent_index = parent_index
        self.root_index = root_index
        self.key = key
        self.scheme = scheme
        self._counts: np.ndarray | None = None
        self._depths: np.ndarray | None = None

    def __len__(self) -> int:
        return int(self.nodes.size)

    @property
    def root(self) -> int:
        """Identifier of the root node."""
        return int(self.nodes[self.root_index])

    def branching_counts(self) -> np.ndarray:
        """Children count per node, aligned with ``nodes`` (cached)."""
        if self._counts is None:
            counts = np.bincount(
                self.parent_index, minlength=self.nodes.size
            ).astype(np.int64)
            counts[self.root_index] -= 1  # the root's absorbing self-loop
            self._counts = counts
        return self._counts

    def depth_array(self) -> np.ndarray:
        """Edge distance to the root per node, aligned with ``nodes`` (cached).

        Absorbing pointer chase: each pass advances every chase one edge
        and counts the ones not yet at the root, so the loop runs ``height``
        times (logarithmic for DATs). Raises :class:`TreeError` if a chase
        cannot converge — a cycle in the parent map.
        """
        if self._depths is None:
            par = self.parent_index
            n = int(self.nodes.size)
            depth = (np.arange(n) != self.root_index).astype(np.int64)
            cur = par
            for _ in range(n + 1):
                alive = cur != self.root_index
                if not bool(alive.any()):
                    self._depths = depth
                    return depth
                depth += alive
                cur = par[cur]
            raise TreeError(
                f"parent chase did not converge in {n} steps "
                f"(cycle in the parent-index array)"
            )
        return self._depths

    def height(self) -> int:
        """Longest root-to-leaf edge distance."""
        return int(self.depth_array().max())

    def message_load_array(self) -> np.ndarray:
        """Per-round messages (sends + receives) per node, aligned with ``nodes``.

        Same accounting as :meth:`DatTree.message_loads`: one send to the
        parent (root excepted) plus one receive per child.
        """
        counts = self.branching_counts()
        loads = counts + 1
        loads[self.root_index] = counts[self.root_index]
        return loads

    def subtree_size_array(self) -> np.ndarray:
        """Descendant count (including self) per node, aligned with ``nodes``.

        Bottom-up accumulation by depth level: children at level ``d`` all
        have parents at level ``d-1``, so one unbuffered scatter-add per
        level folds the whole level at once.
        """
        depth = self.depth_array()
        par = self.parent_index
        sizes = np.ones(self.nodes.size, dtype=np.int64)
        for level in range(int(depth.max()), 0, -1):
            sel = np.nonzero(depth == level)[0]
            np.add.at(sizes, par[sel], sizes[sel])
        return sizes

    def stats(self) -> TreeStats:
        """Sec. 5.2 summary, bit-identical to :meth:`DatTree.stats`.

        The only float is ``avg_branching``; it is computed as one exact
        integer sum divided by an exact integer count — the same single
        IEEE division the object path performs.
        """
        counts = self.branching_counts()
        internal = counts[counts > 0]
        n_internal = int(internal.size)
        return TreeStats(
            n_nodes=int(self.nodes.size),
            height=self.height(),
            max_branching=int(counts.max()),
            avg_branching=(
                int(internal.sum()) / n_internal if n_internal else 0.0
            ),
            n_leaves=int(self.nodes.size) - n_internal,
            n_internal=n_internal,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DatTreeArrays(scheme={self.scheme.value}, root={self.root}, "
            f"n={len(self)})"
        )


def fast_tree_arrays(
    ring: StaticRing,
    key: int,
    scheme: DatScheme | str = DatScheme.BALANCED,
    matrix: np.ndarray | None = None,
) -> DatTreeArrays:
    """Build a :class:`DatTreeArrays` snapshot — the array-native `build_dat`.

    Same construction rule as :func:`fast_basic_parents` /
    :func:`fast_balanced_parents` but the parent map never leaves index
    space: no Python dict, no per-node boxing, O(n) int64 storage.
    ``matrix`` optionally supplies a precomputed
    :func:`fast_finger_matrix` shared across rendezvous keys.
    """
    scheme = DatScheme(scheme)
    nodes, fingers, best, root = _best_parent_slots(ring, key, scheme, matrix)
    n = int(nodes.size)
    root_index = int(np.searchsorted(nodes, np.int64(root)))
    bad = (best < 0) & (np.arange(n) != root_index)
    if bool(bad.any()):
        raise TreeError(
            f"node {int(nodes[bad][0])} has no eligible finger toward {root}"
        )
    chosen = fingers[np.arange(n), np.maximum(best, 0)]
    parent_index = np.searchsorted(nodes, chosen).astype(np.int64, copy=False)
    parent_index[root_index] = root_index
    return DatTreeArrays(
        nodes=nodes,
        parent_index=parent_index,
        root_index=root_index,
        key=int(key),
        scheme=scheme,
    )


def fast_tree_stats(
    ring: StaticRing,
    key: int,
    scheme: DatScheme | str = DatScheme.BALANCED,
    matrix: np.ndarray | None = None,
) -> TreeStats:
    """Sec. 5.2 statistics for one key without materializing a tree object.

    Falls back to the scalar ``build_dat(...).stats()`` for spaces wider
    than ``FAST_PATH_MAX_BITS`` bits or single-node rings, mirroring
    :func:`build_dat_fast`.
    """
    scheme = DatScheme(scheme)
    if ring.space.bits > FAST_PATH_MAX_BITS or len(ring) <= 1:
        return build_dat(ring, key, scheme=scheme).stats()
    return fast_tree_arrays(ring, key, scheme=scheme, matrix=matrix).stats()


def fast_centralized_load_array(
    ring: StaticRing, key: int, matrix: np.ndarray | None = None
) -> np.ndarray:
    """Per-node loads of the centralized *routed* baseline, aligned with
    ``ring.id_index().ids``.

    Equals :func:`repro.baselines.centralized.centralized_routed_loads`
    without tracing a single route: the greedy hop toward the root *is*
    the basic-DAT parent rule (``FingerTable.closest_preceding`` picks the
    highest non-overshooting slot, which always exists because slot 0 is
    the immediate successor), so every route climbs the basic tree's
    parent chain. A node ``v != root`` therefore forwards one message per
    member of its basic-DAT subtree and receives one per member but
    itself — ``load(v) = 2 * subtree(v) - 1`` — while the root receives
    ``n - 1``. Emits the same ``baseline_messages_total`` counter as the
    routed oracle (total sent = sum of depths).
    """
    tree = fast_tree_arrays(ring, key, scheme=DatScheme.BASIC, matrix=matrix)
    sizes = tree.subtree_size_array()
    loads = 2 * sizes - 1
    loads[tree.root_index] = tree.nodes.size - 1
    telemetry.count(
        "baseline_messages_total",
        float(int(tree.depth_array().sum())),
        variant="routed",
    )
    return loads


def fast_tree_height(parents: dict[int, int], root: int) -> int | None:
    """Tree height by vectorized parent-pointer chasing.

    The root's parent pointer is tied to itself (absorbing), so the height
    is the first step count after which every chase has landed on the
    root. Each step is one O(n) fancy-index; the loop runs ``height``
    times (logarithmic for DAT trees). Returns ``None`` when the chase
    cannot converge — a dangling parent or a cycle — so callers fall back
    to :meth:`DatTree.height`'s validating BFS.
    """
    n_edges = len(parents)
    if n_edges == 0:
        return 0
    children = np.fromiter(parents.keys(), dtype=np.int64, count=n_edges)
    par = np.fromiter(parents.values(), dtype=np.int64, count=n_edges)
    ids = np.sort(np.append(children, np.int64(root)))
    guess = np.minimum(np.searchsorted(ids, par), ids.size - 1)
    if not bool(np.array_equal(ids[guess], par)):
        return None  # dangling parent id
    par_ids = np.full(ids.shape, np.int64(root))
    par_ids[np.searchsorted(ids, children)] = par
    par_idx = np.searchsorted(ids, par_ids)
    root_idx = int(np.searchsorted(ids, np.int64(root)))
    cur = par_idx
    for height in range(1, ids.size + 1):
        if bool((cur == root_idx).all()):
            return height
        cur = par_idx[cur]
    return None  # cycle


def build_dat_fast(
    ring: StaticRing,
    key: int,
    scheme: DatScheme | str = DatScheme.BALANCED,
    matrix: np.ndarray | None = None,
) -> DatTree:
    """Drop-in vectorized replacement for :func:`repro.core.builder.build_dat`.

    Falls back to the scalar builders for spaces wider than
    ``FAST_PATH_MAX_BITS`` bits or single-node rings. ``matrix`` optionally
    supplies a precomputed :func:`fast_finger_matrix` shared across keys.
    """
    scheme = DatScheme(scheme)
    if ring.space.bits > FAST_PATH_MAX_BITS or len(ring) <= 1:
        return build_dat(ring, key, scheme=scheme)
    root = ring.successor(key)
    if scheme is DatScheme.BASIC:
        parents = fast_basic_parents(ring, key, matrix=matrix)
    else:
        parents = fast_balanced_parents(ring, key, matrix=matrix)
    tree = DatTree(root=root, parent=parents, key=key)
    # Seed the height cache from the vectorized chase so telemetry's
    # per-build span attribute never triggers the Python BFS — the main
    # enabled-mode cost on this hot path.
    tree._height = fast_tree_height(parents, root)
    return tree

"""Dynamic Chord protocol node (Stoica et al.; paper Sec. 3.1/4).

:class:`ChordProtocolNode` implements the join / stabilize / notify /
fix-fingers protocol over any :class:`~repro.sim.transport.Transport`
(discrete-event simulator or real UDP — the same code runs on both, which
is the prototype property the paper stresses). Because transports cannot
block, every remote interaction is continuation-passing.

Message kinds
-------------
``lookup``            recursive find_successor; forwarded greedily, the
                      terminal node replies directly to the origin.
``get_neighbors``     returns predecessor + successor list (stabilization).
``notify``            Chord's notify: "I might be your predecessor".
``ping``              liveness check.
``probe_join``        identifier-probing join support (Sec. 4): the
                      receiving node inspects a window of its successor
                      list, picks the largest owned interval, and returns
                      the split midpoint as the designated identifier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro import telemetry
from repro.chord.fingers import FingerTable
from repro.chord.idspace import IdSpace
from repro.errors import RoutingError
from repro.net import RetryPolicy, RpcClient, UpcallRegistry
from repro.util.bits import cyclic_increment
from repro.sim.messages import Message
from repro.sim.transport import Transport

__all__ = ["ChordConfig", "ChordProtocolNode"]


@dataclass(frozen=True)
class ChordConfig:
    """Protocol timing and sizing knobs.

    The defaults suit the discrete-event simulator (virtual seconds); UDP
    runs use the same values as wall-clock seconds, matching the prototype's
    periodic finger stabilization.
    """

    stabilize_interval: float = 0.5
    fix_fingers_interval: float = 0.25
    check_predecessor_interval: float = 1.0
    successor_list_size: int = 8
    rpc_timeout: float = 1.0
    #: Max forwarding hops before a lookup is abandoned (loop guard).
    max_lookup_hops: int = 64
    #: Attempts per maintenance RPC (ping / get_neighbors). ``1`` — the
    #: default — reproduces the historical single-attempt behavior exactly;
    #: raise it (with a backoff) on lossy substrates.
    rpc_max_attempts: int = 1
    #: Base backoff between maintenance-RPC retries (seconds).
    rpc_backoff: float = 0.0

    def rpc_policy(self) -> RetryPolicy:
        """The retry policy maintenance RPCs run under."""
        return RetryPolicy(
            timeout=self.rpc_timeout,
            max_attempts=self.rpc_max_attempts,
            backoff_base=self.rpc_backoff,
        )


class ChordProtocolNode:
    """One live Chord node bound to a transport.

    Parameters
    ----------
    ident:
        This node's identifier.
    space:
        Identifier space shared by the overlay.
    transport:
        Message substrate; the node registers itself on construction.
    config:
        Protocol tuning.
    """

    def __init__(
        self,
        ident: int,
        space: IdSpace,
        transport: Transport,
        config: ChordConfig | None = None,
    ) -> None:
        space.validate(ident)
        self.ident = ident
        self.space = space
        self.transport = transport
        self.config = config or ChordConfig()
        self.predecessor: int | None = None
        self.successor: int = ident  # a lone node is its own successor
        self.successor_list: list[int] = []
        self.fingers: list[int | None] = [None] * space.bits
        self.fingers[0] = ident
        self._next_finger = 0
        self._running = False
        self._timer_cancels: list[Callable[[], None]] = []
        #: RPC surface: every remote interaction goes through the session
        #: layer, which owns deadlines, retries, and per-call telemetry.
        self.net = RpcClient(transport, ident, policy=self.config.rpc_policy())
        #: Extra upcall hooks: message kind -> handler(message) -> reply|None.
        #: The DAT service layers register their kinds here (paper Fig. 6's
        #: 'upcall' routine).
        self.upcalls = UpcallRegistry()
        transport.register(ident, self._handle)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def create(self) -> None:
        """Bootstrap a brand-new ring containing only this node."""
        self.predecessor = None
        self.successor = self.ident
        self.successor_list = [self.ident]
        self.start_maintenance()

    def join(
        self,
        bootstrap: int,
        on_joined: Callable[[], None] | None = None,
        on_failure: Callable[[], None] | None = None,
        max_attempts: int = 8,
    ) -> None:
        """Join the ring known to ``bootstrap`` (standard Chord join).

        The node looks up the successor of its own identifier through the
        bootstrap node, adopts it, and lets stabilization wire the rest.
        A lookup that times out (bootstrap busy, routes through a node that
        just died) is retried up to ``max_attempts`` times — an inert
        half-joined node would otherwise strand forever under churn.
        ``on_failure`` fires only after the final attempt.
        """
        self.predecessor = None

        def adopted(successor: int, _path: list[int]) -> None:
            if successor != self.ident:
                self.successor = successor
                self.fingers[0] = successor
            self.start_maintenance()
            if on_joined is not None:
                on_joined()

        def attempt(remaining: int) -> None:
            def failed(_key: int) -> None:
                if remaining > 1:
                    self.transport.schedule(
                        self.config.rpc_timeout, lambda: attempt(remaining - 1)
                    )
                else:
                    # Give up on clean join but still start maintenance:
                    # adopting the bootstrap as a blind successor lets
                    # stabilization finish the job if it comes back.
                    self.successor = bootstrap
                    self.fingers[0] = bootstrap
                    self.start_maintenance()
                    if on_failure is not None:
                        on_failure()

            self.lookup_via(bootstrap, self.ident, adopted, failed)

        attempt(max_attempts)

    def leave(self) -> None:
        """Graceful departure: hand the predecessor/successor to each other.

        Chord's stabilization would repair the ring anyway; the explicit
        handoff just accelerates convergence (and mirrors the prototype's
        clean shutdown path).
        """
        self.stop_maintenance()
        if self.successor != self.ident and self.predecessor is not None:
            self.net.send(
                Message(
                    kind="leave_notice",
                    source=self.ident,
                    destination=self.predecessor,
                    payload={"new_successor": self.successor},
                )
            )
            self.net.send(
                Message(
                    kind="leave_notice",
                    source=self.ident,
                    destination=self.successor,
                    payload={"new_predecessor": self.predecessor},
                )
            )
        self.transport.unregister(self.ident)

    def crash(self) -> None:
        """Fail-stop without any notification (churn experiments)."""
        self.stop_maintenance()
        self.transport.unregister(self.ident)

    def start_maintenance(self) -> None:
        """Begin periodic stabilize / fix-fingers timers."""
        if self._running:
            return
        self._running = True
        self._schedule_stabilize()
        self._schedule_fix_fingers()
        self._schedule_check_predecessor()

    def stop_maintenance(self) -> None:
        """Cancel periodic timers."""
        self._running = False
        for cancel in self._timer_cancels:
            cancel()
        self._timer_cancels.clear()

    # ------------------------------------------------------------------ #
    # Local views
    # ------------------------------------------------------------------ #

    def finger_table(self) -> FingerTable:
        """Current finger table (unfilled slots fall back to the successor).

        The DAT parent-selection code consumes exactly this view, so an
        incompletely-stabilized node still has a defined (if suboptimal)
        parent — the adaptiveness property of Sec. 3.2.
        """
        entries = [
            entry if entry is not None else self.successor for entry in self.fingers
        ]
        # Entries come straight from join/stabilize, which only ever store
        # validated identifiers — skip the O(bits) re-validation per call.
        return FingerTable.trusted(space=self.space, owner=self.ident, entries=entries)

    def owned_gap(self) -> int | None:
        """Clockwise span from predecessor to self (None until stabilized)."""
        if self.predecessor is None:
            return None
        return self.space.cw(self.predecessor, self.ident)

    # ------------------------------------------------------------------ #
    # Lookup (recursive routing)
    # ------------------------------------------------------------------ #

    def lookup(
        self,
        key: int,
        on_result: Callable[[int, list[int]], None],
        on_failure: Callable[[int], None] | None = None,
    ) -> None:
        """Resolve ``successor(key)``; ``on_result(node, path)`` on success."""
        self._start_lookup(key, self.ident, on_result, on_failure)

    def lookup_via(
        self,
        gateway: int,
        key: int,
        on_result: Callable[[int, list[int]], None],
        on_failure: Callable[[int], None] | None = None,
    ) -> None:
        """Resolve ``successor(key)`` through another node (used by join)."""
        self._start_lookup(key, gateway, on_result, on_failure)

    def _start_lookup(
        self,
        key: int,
        first_hop: int,
        on_result: Callable[[int, list[int]], None],
        on_failure: Callable[[int], None] | None,
    ) -> None:
        self.space.validate(key)
        message = Message(
            kind="lookup",
            source=self.ident,
            destination=first_hop,
            payload={
                "key": key,
                "origin": self.ident,
                "hops": 0,
                "path": [],
            },
        )
        # The conversation token rides in the payload: recursive forwarding
        # means intermediate hops never respond to us, so the terminal node
        # answers the *original* request id (``reply_to=token``) and the
        # session layer's pending table correlates it like any other reply.
        message.payload["token"] = message.msg_id
        span = (
            telemetry.span("chord.lookup", node=self.ident, key=key)
            if telemetry.tracing_enabled()
            else telemetry.NULL_SPAN
        )
        span.propagate(message)

        def deliver(reply: Message) -> None:
            span.finish(hops=max(len(reply.payload["path"]) - 1, 0))
            on_result(reply.payload["result"], list(reply.payload["path"]))

        def fail(_request: Message) -> None:
            span.finish(failed=True)
            if on_failure is not None:
                on_failure(key)

        self.net.call(
            message,
            deliver,
            on_timeout=fail,
            policy=RetryPolicy(
                timeout=self.config.rpc_timeout * self.config.max_lookup_hops / 8
            ),
            send=self._forward_lookup if first_hop == self.ident else None,
        )
        span.detach()

    def _forward_lookup(self, message: Message) -> None:
        payload = message.payload
        key = payload["key"]
        hops = payload["hops"]
        path = list(payload["path"]) + [self.ident]
        if hops > self.config.max_lookup_hops:
            return  # abandoned; origin's deadline fires
        # Each hop is a span joined to the origin's trace; the forwarded
        # message (and the terminal result, via the send path's automatic
        # threading) continues from *this* hop, not the origin.
        with telemetry.remote_span(
            message, "chord.lookup_hop", node=self.ident, key=key, hops=hops
        ) as hop:
            if self._owns_key_successor(key):
                # key == self.ident -> successor(key) is this node itself;
                # otherwise key in (self, successor] -> it's our successor.
                result = self.ident if key == self.ident else self.successor
                self._send_lookup_result(payload, result, path)
                return
            next_hop = self.finger_table().closest_preceding(key)
            if next_hop is None or next_hop == self.ident:
                # All fingers overshoot: the key's successor is our successor.
                self._send_lookup_result(payload, self.successor, path)
                return
            forward = Message(
                kind="lookup",
                source=self.ident,
                destination=next_hop,
                payload={**payload, "hops": hops + 1, "path": path},
            )
            # The copied payload still carries the *incoming* context;
            # replace it so the next hop chains under this one.
            hop.propagate(forward)
            self.net.send(forward)

    def _owns_key_successor(self, key: int) -> bool:
        """True when this node can terminate the lookup locally."""
        if key == self.ident:
            return True
        if self.successor == self.ident:
            return True  # single-node ring
        return self.space.in_half_open_right(key, self.ident, self.successor)

    def _send_lookup_result(
        self, payload: dict[str, Any], result: int, path: list[int]
    ) -> None:
        # A response to the origin's *original* request: ``reply_to`` is the
        # conversation token, so the origin's session layer matches it even
        # though this terminal node never saw that request directly.
        self.net.send(
            Message(
                kind="lookup_result",
                source=self.ident,
                destination=payload["origin"],
                payload={"result": result, "path": path},
                reply_to=payload["token"],
            )
        )

    # ------------------------------------------------------------------ #
    # Stabilization (paper: "finger stabilization algorithm")
    # ------------------------------------------------------------------ #

    def _schedule_stabilize(self) -> None:
        if not self._running:
            return
        cancel = self.transport.schedule(
            self.config.stabilize_interval, self._stabilize_tick
        )
        self._timer_cancels.append(cancel)

    def _stabilize_tick(self) -> None:
        if not self._running:
            return
        self.stabilize()
        self._schedule_stabilize()

    def stabilize(self) -> None:
        """One stabilization round: verify successor, notify it."""
        if self.successor == self.ident:
            if self.predecessor is not None and self.predecessor != self.ident:
                # Another node joined and notified us; adopt it to break the
                # one-node self-loop.
                self.successor = self.predecessor
                self.fingers[0] = self.successor
            else:
                # Heavy churn can exhaust the successor list and strand this
                # node on a one-node ring, silently partitioning the overlay.
                # Probe remembered peers (stale list entries, finger cache)
                # and re-merge through the first that answers.
                self._attempt_rejoin()
            return

        target = self.successor
        request = Message(
            kind="get_neighbors",
            source=self.ident,
            destination=target,
            payload={},
        )

        def on_reply(reply: Message) -> None:
            pred = reply.payload.get("predecessor")
            succ_list = list(reply.payload.get("successor_list", []))
            if pred is not None and self.space.in_open(pred, self.ident, self.successor):
                self.successor = pred
                self.fingers[0] = pred
            self.successor_list = ([self.successor] + succ_list)[
                : self.config.successor_list_size
            ]
            self._notify_successor()

        def on_timeout(_msg: Message) -> None:
            # Only fail over if the unresponsive node is *still* our
            # successor — a stale timeout from a round that predates a
            # completed failover must not clobber the repaired state.
            if self.successor == target:
                self._handle_successor_failure()

        self.net.call(request, on_reply, on_timeout=on_timeout)

    def _attempt_rejoin(self) -> None:
        """Ping one remembered peer; if it answers, adopt it as successor.

        Candidates rotate through everything this node has ever known about
        the overlay: stale successor-list entries and cached fingers. The
        next stabilization rounds repair the exact position.
        """
        candidates: list[int] = []
        seen: set[int] = set()
        for peer in [*self.successor_list, *(f for f in self.fingers if f is not None)]:
            if peer is not None and peer != self.ident and peer not in seen:
                seen.add(peer)
                candidates.append(peer)
        if not candidates:
            return
        self._rejoin_cursor = getattr(self, "_rejoin_cursor", -1) + 1
        target = candidates[self._rejoin_cursor % len(candidates)]
        request = Message(kind="ping", source=self.ident, destination=target, payload={})

        def on_reply(_reply: Message) -> None:
            if self.successor == self.ident:
                self.successor = target
                self.fingers[0] = target
                self._notify_successor()

        self.net.call(request, on_reply)

    def _notify_successor(self) -> None:
        if self.successor == self.ident:
            return
        self.net.send(
            Message(
                kind="notify",
                source=self.ident,
                destination=self.successor,
                payload={"candidate": self.ident},
            )
        )

    def _handle_successor_failure(self) -> None:
        """Successor unresponsive: fail over to the next live list entry."""
        candidates = [n for n in self.successor_list if n != self.successor]
        if candidates:
            self.successor = candidates[0]
            self.successor_list = candidates
        else:
            # Last resort: best finger, else collapse to a lone ring.
            fallback = None
            for entry in self.fingers:
                if entry is not None and entry != self.ident and entry != self.successor:
                    fallback = entry
                    break
            self.successor = fallback if fallback is not None else self.ident
        self.fingers[0] = self.successor

    # ------------------------------------------------------------------ #
    # Predecessor liveness (Chord's check_predecessor)
    # ------------------------------------------------------------------ #

    def _schedule_check_predecessor(self) -> None:
        if not self._running:
            return
        cancel = self.transport.schedule(
            self.config.check_predecessor_interval, self._check_predecessor_tick
        )
        self._timer_cancels.append(cancel)

    def _check_predecessor_tick(self) -> None:
        if not self._running:
            return
        self.check_predecessor()
        self._schedule_check_predecessor()

    def check_predecessor(self) -> None:
        """Ping the predecessor; clear the pointer if it is dead.

        Without this, a node keeps advertising a crashed predecessor in its
        ``get_neighbors`` replies and its live predecessor re-adopts the
        dead node as successor forever.
        """
        if self.predecessor is None or self.predecessor == self.ident:
            return
        target = self.predecessor
        request = Message(
            kind="ping", source=self.ident, destination=target, payload={}
        )

        def on_timeout(_msg: Message) -> None:
            if self.predecessor == target:
                self.predecessor = None

        self.net.call(request, lambda reply: None, on_timeout=on_timeout)

    # ------------------------------------------------------------------ #
    # Finger maintenance
    # ------------------------------------------------------------------ #

    def _schedule_fix_fingers(self) -> None:
        if not self._running:
            return
        cancel = self.transport.schedule(
            self.config.fix_fingers_interval, self._fix_fingers_tick
        )
        self._timer_cancels.append(cancel)

    def _fix_fingers_tick(self) -> None:
        if not self._running:
            return
        self.fix_next_finger()
        self._schedule_fix_fingers()

    def fix_next_finger(self) -> None:
        """Refresh one finger slot (round-robin): ping, purge, re-look-up.

        The current entry is pinged first. A dead finger must be purged
        *before* the refresh lookup: greedy routing would otherwise forward
        the lookup through the very node whose death we are trying to
        detect, and the slot could never heal.
        """
        j = self._next_finger
        self._next_finger = cyclic_increment(self._next_finger, self.space.bits)
        start = self.space.finger_start(self.ident, j)

        def update(result: int, _path: list[int]) -> None:
            self.fingers[j] = result

        def refresh() -> None:
            self.lookup(start, update)

        current = self.fingers[j]
        if current is None or current == self.ident or current == self.successor:
            refresh()
            return

        request = Message(
            kind="ping", source=self.ident, destination=current, payload={}
        )

        def on_timeout(_msg: Message) -> None:
            self._purge_dead(current)
            refresh()

        self.net.call(request, lambda _reply: refresh(), on_timeout=on_timeout)

    def _purge_dead(self, dead: int) -> None:
        """Remove a confirmed-dead node from every local routing structure."""
        for slot, entry in enumerate(self.fingers):
            if entry == dead:
                self.fingers[slot] = None
        self.successor_list = [n for n in self.successor_list if n != dead]
        if self.predecessor == dead:
            self.predecessor = None
        if self.successor == dead:
            self._handle_successor_failure()

    def fix_all_fingers(self) -> None:
        """Kick a refresh of every slot (accelerates test convergence)."""
        for _ in range(self.space.bits):
            self.fix_next_finger()

    # ------------------------------------------------------------------ #
    # Message handling
    # ------------------------------------------------------------------ #

    def _handle(self, message: Message) -> Message | None:
        kind = message.kind
        if kind == "lookup":
            self._forward_lookup(message)
            return None
        if kind == "get_neighbors":
            return message.response(
                predecessor=self.predecessor,
                successor_list=self.successor_list[: self.config.successor_list_size],
            )
        if kind == "notify":
            self._on_notify(message.payload["candidate"])
            return None
        if kind == "ping":
            return message.response(alive=True)
        if kind == "leave_notice":
            self._on_leave_notice(message.payload)
            return None
        if kind == "probe_join":
            return self._on_probe_join(message)
        upcall = self.upcalls.get(kind)
        if upcall is not None:
            return upcall(message)
        raise RoutingError(f"node {self.ident}: unknown message kind {kind!r}")

    def _on_notify(self, candidate: int) -> None:
        if candidate == self.ident:
            return
        if self.predecessor is None or self.space.in_open(
            candidate, self.predecessor, self.ident
        ):
            self.predecessor = candidate

    def _on_leave_notice(self, payload: dict[str, Any]) -> None:
        new_successor = payload.get("new_successor")
        new_predecessor = payload.get("new_predecessor")
        if new_successor is not None:
            self.successor = new_successor if new_successor != self.ident else self.ident
            self.fingers[0] = self.successor
        if new_predecessor is not None:
            self.predecessor = (
                new_predecessor if new_predecessor != self.ident else None
            )

    def _on_probe_join(self, message: Message) -> Message:
        """Identifier-probing join support (Sec. 4).

        The probed node examines the owned intervals it can see locally —
        its own gap and the gaps between consecutive successor-list entries
        — splits the largest, and designates the midpoint.
        """
        intervals: list[tuple[int, int, int]] = []  # (gap, pred, node)
        own = self.owned_gap()
        if own is not None:
            intervals.append((own, self.predecessor, self.ident))  # type: ignore[arg-type]
        chain = [self.ident] + list(self.successor_list)
        for left, right in zip(chain, chain[1:]):
            if left != right:
                intervals.append((self.space.cw(left, right), left, right))
        if not intervals:
            # Not yet stabilized: fall back to splitting our own span guess.
            designated = self.space.wrap(self.ident + self.space.size // 2)
            return message.response(designated=designated)
        gap, pred, _node = max(intervals)
        designated = self.space.wrap(pred + gap // 2)
        return message.response(designated=designated)

"""Incremental DAT maintenance: O(log n) expected work per churn event.

The paper's operational claim (Secs. 3.2 / 5) is that DATs impose "very low
overhead during node arrival and departure" because the tree is implicit in
Chord finger state. The analytical experiments previously paid ``O(n*bits)``
to rebuild every finger table and parent map after *each* membership event;
this module repairs the converged-ring model locally instead:

* :class:`ReverseFingerIndex` — for every node, the set of ``(owner, slot)``
  finger entries that currently *resolve to* it. A membership change at
  identifier ``p`` only re-resolves the slots whose target falls inside the
  interval ``(predecessor(p), p]`` — in expectation ``bits = O(log N)``
  entries — plus the joining node's own ``bits`` fingers.

* :class:`RingMaintainer` — applies a join/leave to a :class:`StaticRing`
  and patches the scalar :class:`FingerTable` dict and the NumPy
  ``fast_finger_matrix`` in place, keeping both bit-identical to a
  from-scratch rebuild.

* :class:`DatUpdateEngine` — tracks any number of DAT trees (one per
  rendezvous key) over the maintained ring and recomputes parents only for
  the affected node set: finger-patch owners, the joining node, and — for
  the balanced scheme — the nodes whose finger-limit ``g(x)`` shifted when
  the mean gap ``d0 = 2^bits/n`` changed. Root handovers (the event lands
  on ``successor(key)``) fall back to a full rebuild of that one tree.

The full rebuild remains the reference oracle, following the equivalence
discipline established by :mod:`repro.chord.fastbuild`: if the incremental
state and a rebuild ever disagree (``verify=True`` cross-checks every
event), the rebuild wins and the divergence is traced.

Why the balanced scheme needs the limit-shift set: ``g(x) <= j`` iff
``x <= 3*2^j - c(n)`` where ``c(n) = ceil(2*2^bits / n)`` — every limiting
threshold shifts by the *same* offset when ``n`` changes. The nodes whose
``g(x)`` flipped after an event therefore lie in at most ``bits - 1`` thin
identifier intervals, enumerated with two bisects each.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.chord.fastbuild import (
    FAST_PATH_MAX_BITS,
    build_dat_fast,
    fast_finger_matrix,
)
from repro import telemetry
from repro.chord.fingers import FingerTable
from repro.chord.ring import StaticRing
from repro.core.builder import DatScheme, build_dat
from repro.core.tree import DatTree
from repro.errors import DuplicateNodeError, TreeError, UnknownNodeError
from repro.sim.tracing import get_logger
from repro.util.bits import ceil_div, ceil_log2

__all__ = [
    "FingerPatch",
    "RingDelta",
    "ReverseFingerIndex",
    "RingMaintainer",
    "DatUpdateReport",
    "DatUpdateEngine",
]

#: Event-kind spellings accepted by :meth:`RingMaintainer.apply` /
#: :meth:`DatUpdateEngine.apply`. A crash is structurally identical to a
#: graceful leave in the converged-ring model (the departed state vanishes
#: either way); the distinction only matters to the live protocol.
JOIN_KINDS = frozenset({"join"})
LEAVE_KINDS = frozenset({"leave", "crash"})


@dataclass(frozen=True)
class FingerPatch:
    """One finger-table entry rewritten by a membership event."""

    owner: int
    slot: int
    old: int
    new: int


@dataclass(frozen=True)
class RingDelta:
    """Everything a single membership event changed in the ring state."""

    kind: str  # "join" or "leave"
    ident: int
    patches: tuple[FingerPatch, ...]
    n_before: int
    n_after: int

    @property
    def is_join(self) -> bool:
        return self.kind in JOIN_KINDS

    def touched_owners(self) -> set[int]:
        """Owners of finger entries rewritten by this event."""
        return {patch.owner for patch in self.patches}


class ReverseFingerIndex:
    """Inverted finger map: node -> the ``(owner, slot)`` pairs resolving to it.

    Slot ``(v, j)`` resolves to ``successor(v + 2^j)``; the index groups all
    ``n * bits`` slots by their current resolution so a membership event can
    enumerate exactly the entries it invalidates. Expected bucket size is
    ``bits`` (each of the ``n`` nodes owns ``bits`` slots spread over ``n``
    buckets), which is what makes per-event maintenance ``O(log n)``.
    """

    def __init__(self) -> None:
        self._into: dict[int, set[tuple[int, int]]] = {}

    @classmethod
    def from_tables(cls, tables: Mapping[int, FingerTable]) -> "ReverseFingerIndex":
        """Build the index from finger tables (O(n*bits), done once)."""
        index = cls()
        into = index._into
        for owner, table in tables.items():
            for slot, value in enumerate(table.entries):
                into.setdefault(value, set()).add((owner, slot))
        return index

    def slots_into(self, node: int) -> list[tuple[int, int]]:
        """Snapshot of the slots currently resolving to ``node``."""
        return list(self._into.get(node, ()))

    def add(self, owner: int, slot: int, value: int) -> None:
        self._into.setdefault(value, set()).add((owner, slot))

    def discard(self, owner: int, slot: int, value: int) -> None:
        bucket = self._into.get(value)
        if bucket is not None:
            bucket.discard((owner, slot))
            if not bucket:
                del self._into[value]

    def move(self, owner: int, slot: int, old: int, new: int) -> None:
        """Re-home one slot from resolution ``old`` to ``new``."""
        self.discard(owner, slot, old)
        self.add(owner, slot, new)

    def n_slots(self) -> int:
        """Total tracked slots (``n * bits`` on a consistent index)."""
        return sum(len(bucket) for bucket in self._into.values())

    def as_dict(self) -> dict[int, set[tuple[int, int]]]:
        """Copy of the underlying buckets (for tests/diagnostics)."""
        return {node: set(bucket) for node, bucket in self._into.items()}


class RingMaintainer:
    """Keeps finger state in sync with a ring across membership events.

    Owns (or adopts) three mutually consistent views of the converged
    overlay and patches all of them per event instead of rebuilding:

    * the :class:`StaticRing` membership itself,
    * the scalar ``{node: FingerTable}`` dict (shared with the builders),
    * an ``(n, bits)`` NumPy finger matrix (``None`` for spaces wider than
      :data:`FAST_PATH_MAX_BITS`), and
    * the :class:`ReverseFingerIndex` over the tables.

    The matrix is held in an *unsorted* backing store with a node->row map:
    a join appends one row, a leave swap-deletes one, and finger patches
    rewrite single cells — all ``O(bits)``, never an ``O(n)`` row shift.
    The :attr:`matrix` property gathers the rows into ``ring.nodes`` order
    on demand (only full rebuilds need the sorted view).

    If the ring is mutated behind the maintainer's back (detected via
    :attr:`StaticRing.version`), the maintainer discards its state and
    rebuilds from scratch — the rebuild-wins discipline.
    """

    def __init__(
        self,
        ring: StaticRing,
        tables: dict[int, FingerTable] | None = None,
        matrix: np.ndarray | None = None,
    ) -> None:
        self.ring = ring
        self.space = ring.space
        self.tables: dict[int, FingerTable] = {}
        self._buf: np.ndarray | None = None  # (capacity, bits) backing store
        self._row_of: dict[int, int] = {}  # node -> row in _buf
        self._node_at: list[int] = []  # row -> node
        self._nrows = 0
        self._index = ReverseFingerIndex()
        self._version = -1
        if tables is not None and len(tables) == len(ring):
            self._adopt(tables, matrix)
        else:
            self.rebuild()

    # ------------------------------------------------------------------ #
    # (Re)construction
    # ------------------------------------------------------------------ #

    @property
    def matrix(self) -> np.ndarray | None:
        """The finger matrix with rows in ``ring.nodes`` order.

        Materialized from the unsorted backing store on access (O(n)
        gather); per-event maintenance itself never pays this. ``None``
        for spaces wider than :data:`FAST_PATH_MAX_BITS`.
        """
        if self._buf is None:
            return None
        if self._nrows == 0:
            return self._buf[:0]
        perm = [self._row_of[node] for node in self.ring.nodes]
        return self._buf[perm]

    def _narrow(self) -> bool:
        return self.space.bits <= FAST_PATH_MAX_BITS

    def _set_backing(self, sorted_matrix: np.ndarray | None) -> None:
        """Reset the backing store from a matrix in ``ring.nodes`` order."""
        if sorted_matrix is None:
            self._buf = None
            self._row_of = {}
            self._node_at = []
            self._nrows = 0
            return
        self._buf = sorted_matrix
        self._node_at = list(self.ring.nodes)
        self._row_of = {node: row for row, node in enumerate(self._node_at)}
        self._nrows = len(self._node_at)

    def _empty_backing(self) -> np.ndarray | None:
        if not self._narrow():
            return None
        return np.empty((0, self.space.bits), dtype=np.int64)

    def _adopt(
        self, tables: dict[int, FingerTable], matrix: np.ndarray | None
    ) -> None:
        """Take ownership of pre-built state instead of rebuilding it."""
        self.tables = tables
        if matrix is not None and matrix.shape == (len(self.ring), self.space.bits):
            # Copy: the caller may keep using its array for full builds.
            self._set_backing(np.array(matrix, dtype=np.int64))
        elif self._narrow():
            self._set_backing(self._matrix_from_tables())
        else:
            self._set_backing(None)
        self._index = ReverseFingerIndex.from_tables(tables)
        self._version = self.ring.version

    def _matrix_from_tables(self) -> np.ndarray | None:
        if not self._narrow():
            return None
        if not self.tables:
            return self._empty_backing()
        return np.array(
            [self.tables[node].entries for node in self.ring.nodes], dtype=np.int64
        )

    def rebuild(self) -> None:
        """Full rebuild of tables, matrix, and index from the ring (oracle)."""
        if len(self.ring) and self._narrow():
            sorted_matrix = fast_finger_matrix(self.ring)
            space = self.space
            self.tables = {
                node: FingerTable(space=space, owner=node, entries=row)
                for node, row in zip(self.ring.nodes, sorted_matrix.tolist())
            }
            self._set_backing(sorted_matrix)
        else:
            self._set_backing(self._empty_backing())
            self.tables = self.ring.all_finger_tables()
        self._index = ReverseFingerIndex.from_tables(self.tables)
        self._version = self.ring.version

    def _patch_cells(self, patches: list[FingerPatch]) -> None:
        """Rewrite the patched cells in the backing store (batched)."""
        if self._buf is None or not patches:
            return
        self._buf[
            [self._row_of[patch.owner] for patch in patches],
            [patch.slot for patch in patches],
        ] = [patch.new for patch in patches]

    def _check_version(self) -> None:
        if self._version != self.ring.version:
            get_logger("chord.incremental").warning(
                "ring mutated outside the maintainer (version %d != tracked "
                "%d); rebuilding finger state from scratch",
                self.ring.version,
                self._version,
            )
            self.rebuild()

    # ------------------------------------------------------------------ #
    # Events
    # ------------------------------------------------------------------ #

    def apply(self, kind: str, ident: int) -> RingDelta:
        """Apply one membership event by kind ("join", "leave", or "crash")."""
        if kind in JOIN_KINDS:
            return self.join(ident)
        if kind in LEAVE_KINDS:
            return self.leave(ident, kind=kind)
        raise ValueError(f"unknown membership event kind {kind!r}")

    def join(self, ident: int) -> RingDelta:
        """Insert ``ident``, patching only the affected finger entries."""
        self._check_version()
        space = self.space
        space.validate(ident)
        if ident in self.ring:
            raise DuplicateNodeError(f"duplicate node identifier {ident}")
        n_before = len(self.ring)
        if n_before == 0:
            self.ring.add(ident)
            entries = [ident] * space.bits
            self.tables[ident] = FingerTable(
                space=space, owner=ident, entries=list(entries)
            )
            for slot in range(space.bits):
                self._index.add(ident, slot, ident)
            if self._narrow():
                self._set_backing(np.full((1, space.bits), ident, dtype=np.int64))
            self._version = self.ring.version
            return RingDelta("join", ident, (), 0, 1)

        predecessor = self.ring.predecessor(ident)
        old_successor = self.ring.successor(ident)
        self.ring.add(ident)
        mask = space.max_id

        # 1. Existing slots whose target now lands in (predecessor, ident]
        #    re-resolve from the old successor to the new node. Inlined
        #    interval test (cw distances against the interval width) — this
        #    loop and the ones below are the per-event hot path.
        width = (ident - predecessor) & mask
        patches: list[FingerPatch] = []
        for owner, slot in self._index.slots_into(old_successor):
            target = (owner + (1 << slot)) & mask
            if 0 < (target - predecessor) & mask <= width:
                self.tables[owner].entries[slot] = ident
                self._index.move(owner, slot, old_successor, ident)
                patches.append(FingerPatch(owner, slot, old_successor, ident))

        # 2. The new node's own finger table (bits successor bisects).
        nodes = self.ring.nodes
        n_after = len(nodes)
        entries = []
        for slot in range(space.bits):
            position = bisect_left(nodes, (ident + (1 << slot)) & mask)
            entries.append(nodes[0] if position == n_after else nodes[position])
        self.tables[ident] = FingerTable(space=space, owner=ident, entries=entries)
        for slot, value in enumerate(entries):
            self._index.add(ident, slot, value)

        # 3. Mirror both changes into the backing store: append one row
        #    (amortized O(bits) with capacity doubling) plus the patched
        #    cells. Row order is maintained lazily by the matrix property.
        if self._buf is not None:
            if self._nrows == len(self._buf):
                capacity = max(2 * self._nrows, 8)
                grown = np.empty((capacity, space.bits), dtype=np.int64)
                grown[: self._nrows] = self._buf[: self._nrows]
                self._buf = grown
            row = self._nrows
            self._buf[row] = entries
            self._row_of[ident] = row
            self._node_at.append(ident)
            self._nrows += 1
            self._patch_cells(patches)

        self._version = self.ring.version
        return RingDelta("join", ident, tuple(patches), n_before, n_before + 1)

    def leave(self, ident: int, kind: str = "leave") -> RingDelta:
        """Remove ``ident``, patching only the affected finger entries.

        ``kind`` records the departure flavor ("leave" or "crash") in the
        returned delta; both are structurally identical here.
        """
        if kind not in LEAVE_KINDS:
            raise ValueError(f"not a departure kind: {kind!r}")
        self._check_version()
        if ident not in self.ring:
            raise UnknownNodeError(ident)
        n_before = len(self.ring)
        if n_before == 1:
            self.ring.remove(ident)
            self.tables.clear()
            self._index = ReverseFingerIndex()
            self._set_backing(self._empty_backing())
            self._version = self.ring.version
            return RingDelta(kind, ident, (), 1, 0)

        successor = self.ring.successor_of_node(ident)

        # 1. Drop the departing node's own slots from the index.
        own = self.tables.pop(ident)
        for slot, value in enumerate(own.entries):
            self._index.discard(ident, slot, value)

        self.ring.remove(ident)

        # 2. Every remaining slot that resolved to the departed node now
        #    resolves to its successor (nothing lives in between).
        patches: list[FingerPatch] = []
        for owner, slot in self._index.slots_into(ident):
            self.tables[owner].entries[slot] = successor
            self._index.move(owner, slot, ident, successor)
            patches.append(FingerPatch(owner, slot, ident, successor))

        # 3. Mirror into the backing store: swap the last row into the
        #    departed node's slot (O(bits)) and rewrite the patched cells.
        if self._buf is not None:
            row = self._row_of.pop(ident)
            last = self._nrows - 1
            if row != last:
                self._buf[row] = self._buf[last]
                moved = self._node_at[last]
                self._node_at[row] = moved
                self._row_of[moved] = row
            self._node_at.pop()
            self._nrows = last
            self._patch_cells(patches)

        self._version = self.ring.version
        return RingDelta(kind, ident, tuple(patches), n_before, n_before - 1)


def _limit_shift_members(
    ring: StaticRing, root: int, n_before: int, n_after: int
) -> list[int]:
    """Current members whose finger limit ``g(x)`` changed with ``n``.

    ``g(x) <= j  iff  x <= 3*2^j - c(n)`` with ``c(n) = ceil(2*2^bits/n)``,
    so a change of ``n`` shifts every threshold by ``c_old - c_new`` and the
    flipped nodes lie in the clockwise identifier intervals
    ``(3*2^j - c_hi, 3*2^j - c_lo]`` measured as distance-to-root. Only
    thresholds with ``j <= bits - 2`` can alter a parent choice (the
    eligible-slot cap is ``min(g(x), bits - 1)``).
    """
    if n_before == n_after or n_before == 0 or n_after == 0:
        return []
    space = ring.space
    size = space.size
    c_old = ceil_div(2 * size, n_before)
    c_new = ceil_div(2 * size, n_after)
    if c_old == c_new:
        return []
    c_lo, c_hi = min(c_old, c_new), max(c_old, c_new)
    mask = size - 1
    nodes = ring.nodes
    members: list[int] = []
    # Inlined nodes_in_interval (two bisects per threshold, no per-call
    # validation) — this runs once per event on the hot path.
    for j in range(space.bits - 1):
        boundary = 3 << j
        x_lo = max(boundary - c_hi, 0)  # exclusive
        x_hi = min(boundary - c_lo, size - 1)  # inclusive
        if x_hi <= x_lo:
            continue
        lo_id = (root - x_hi) & mask
        hi_id = (root - (x_lo + 1)) & mask
        if lo_id <= hi_id:
            members.extend(
                nodes[bisect_left(nodes, lo_id) : bisect_right(nodes, hi_id)]
            )
        else:
            members.extend(nodes[bisect_left(nodes, lo_id) :])
            members.extend(nodes[: bisect_right(nodes, hi_id)])
    return members


@dataclass(frozen=True)
class DatUpdateReport:
    """What one membership event cost across all tracked trees."""

    delta: RingDelta
    #: key -> number of parent entries recomputed for that tree.
    reparented: dict[int, int]
    #: keys whose tree was fully rebuilt (root handover).
    rebuilt_keys: tuple[int, ...]
    #: keys where verify-mode found a divergence (rebuild adopted).
    verified_mismatches: tuple[int, ...] = ()

    @property
    def finger_updates(self) -> int:
        """Finger entries rewritten by the event (joiner's own excluded)."""
        return len(self.delta.patches)

    @property
    def parent_updates(self) -> int:
        """Parent entries recomputed across all tracked trees."""
        return sum(self.reparented.values())


class DatUpdateEngine:
    """Incrementally maintained DAT trees over a churning ring.

    Tracks one tree per rendezvous key; :meth:`apply` routes a membership
    event through the :class:`RingMaintainer` and patches every tracked
    tree's parent map, recomputing parents only for the affected node set.

    Parameters
    ----------
    ring:
        The ring to maintain (mutated in place by events).
    scheme:
        Tree-construction scheme for every tracked tree.
    tables, matrix:
        Optional pre-built finger state to adopt (must match the ring).
    verify:
        Cross-check every event against a full rebuild and adopt the
        rebuild on divergence. The oracle mode used by the equivalence
        tests; costs a full rebuild per event, so keep it off in
        production sweeps.
    """

    def __init__(
        self,
        ring: StaticRing,
        scheme: DatScheme | str = DatScheme.BALANCED,
        tables: dict[int, FingerTable] | None = None,
        matrix: np.ndarray | None = None,
        verify: bool = False,
    ) -> None:
        self.scheme = DatScheme(scheme)
        self.verify = verify
        self.maintainer = RingMaintainer(ring, tables=tables, matrix=matrix)
        self._trees: dict[int, DatTree] = {}
        #: tracked keys whose tree awaits a non-empty ring (drained away).
        self._pending: set[int] = set()

    @property
    def ring(self) -> StaticRing:
        return self.maintainer.ring

    @property
    def trees(self) -> dict[int, DatTree]:
        """key -> its current tree (live views; see :meth:`tree`)."""
        return self._trees

    def tree(self, key: int) -> DatTree:
        """The tracked tree for one rendezvous key.

        Tracked trees are *live*: :meth:`apply` patches their parent maps
        in place (copying per event would reintroduce the O(n) cost this
        engine removes). Take ``dict(tree.parent)`` — or an untracked
        :meth:`full_build` — if a frozen snapshot is needed.
        """
        try:
            return self._trees[key]
        except KeyError:
            raise KeyError(f"key {key} is not tracked by this engine") from None

    # ------------------------------------------------------------------ #
    # Tracking
    # ------------------------------------------------------------------ #

    def full_build(self, key: int) -> DatTree:
        """Reference build of one tree from the maintained finger state."""
        ring = self.ring
        matrix = self.maintainer.matrix
        if matrix is not None and len(ring) > 1:
            return build_dat_fast(ring, key, scheme=self.scheme, matrix=matrix)
        return build_dat(
            ring, key, scheme=self.scheme, tables=self.maintainer.tables
        )

    def track(self, key: int, tree: DatTree | None = None) -> DatTree:
        """Start maintaining the tree for ``key`` (building it if needed)."""
        self.ring.space.validate(key)
        if tree is None:
            tree = self._trees.get(key) or self.full_build(key)
        self._trees[key] = tree
        return tree

    def untrack(self, key: int) -> None:
        """Stop maintaining the tree for ``key``."""
        self._trees.pop(key, None)
        self._pending.discard(key)

    # ------------------------------------------------------------------ #
    # Event application
    # ------------------------------------------------------------------ #

    def apply(self, kind: str, ident: int) -> DatUpdateReport:
        """Apply one membership event and patch every tracked tree."""
        with telemetry.span(
            "churn.apply", kind=kind, node=ident, n_trees=len(self._trees)
        ) as sp:
            report = self._apply(kind, ident)
            if sp is not telemetry.NULL_SPAN:
                sp.set(
                    finger_updates=report.finger_updates,
                    parent_updates=report.parent_updates,
                    rebuilt=len(report.rebuilt_keys),
                )
                telemetry.count("churn_events_total", kind=kind)
                telemetry.count(
                    "churn_finger_updates_total", report.finger_updates
                )
                telemetry.count(
                    "churn_parent_updates_total", report.parent_updates
                )
            return report

    def _apply(self, kind: str, ident: int) -> DatUpdateReport:
        delta = self.maintainer.apply(kind, ident)
        reparented: dict[int, int] = {}
        rebuilt: list[int] = []
        if len(self.ring) == 0:
            # Ring drained: trees cannot exist until members return, but
            # the keys stay tracked and rematerialize on the next join.
            self._pending.update(self._trees)
            self._trees.clear()
        elif self._pending:
            for key in sorted(self._pending):
                self._trees[key] = self.full_build(key)
                rebuilt.append(key)
                reparented[key] = 0
            self._pending.clear()
        for key, old_tree in list(self._trees.items()):
            if key in reparented:
                continue  # just rematerialized from pending, already current
            patched = self._patch_tree(key, old_tree, delta)
            if patched is None:
                self._trees[key] = self.full_build(key)
                rebuilt.append(key)
                reparented[key] = 0
            else:
                self._trees[key], reparented[key] = patched
        mismatches = self._verify_all() if self.verify else ()
        return DatUpdateReport(
            delta=delta,
            reparented=reparented,
            rebuilt_keys=tuple(rebuilt),
            verified_mismatches=mismatches,
        )

    def _patch_tree(
        self, key: int, old_tree: DatTree, delta: RingDelta
    ) -> tuple[DatTree, int] | None:
        """Patch one tree for a delta; ``None`` requests a full rebuild."""
        ring = self.ring
        if len(ring) == 0:
            return None
        new_root = ring.successor(key)
        if new_root != old_tree.root:
            return None  # root handover: rare, amortized O(1/n) per event

        affected = delta.touched_owners()
        if delta.is_join:
            affected.add(delta.ident)
        if self.scheme is DatScheme.BALANCED:
            affected.update(
                _limit_shift_members(ring, new_root, delta.n_before, delta.n_after)
            )

        # Patch the parent map in place: tracked trees are live views owned
        # by the engine (copy-per-event would reintroduce O(n) work).
        parent = old_tree.parent
        if not delta.is_join:
            parent.pop(delta.ident, None)

        # Inlined parent selection, bit-identical to select_parent_basic /
        # select_parent_balanced. The balanced limit uses the pure-integer
        # form g(x) = ceil_log2(max(ceil((x + c)/3), 1)), c = ceil(2*2^b/n):
        # ceil((x + 2S/n)/3) = ceil(ceil((x*n + 2S)/n)/3) = ceil((x + c)/3)
        # by the nested-ceiling identity, so no Fraction arithmetic is
        # needed on the per-event hot path.
        space = ring.space
        mask = space.max_id
        top_cap = space.bits - 1
        balanced = self.scheme is DatScheme.BALANCED
        c = ceil_div(2 * space.size, delta.n_after) if balanced else 0
        tables = self.maintainer.tables
        count = 0
        for node in affected:
            if node == new_root:
                continue
            x = (new_root - node) & mask
            if balanced:
                top = min(ceil_log2(max((x + c + 2) // 3, 1)), top_cap)
            else:
                top = top_cap
            entries = tables[node].entries
            for j in range(top, -1, -1):
                finger = entries[j]
                if finger != node and (finger - node) & mask <= x:
                    parent[node] = finger
                    count += 1
                    break
            else:
                raise TreeError(
                    f"node {node} has no eligible finger toward root "
                    f"{new_root}; finger table is inconsistent"
                )
        return DatTree(root=new_root, parent=parent, key=key), count

    def _verify_all(self) -> tuple[int, ...]:
        """Oracle cross-check: rebuild each tree; the rebuild wins on mismatch."""
        mismatches: list[int] = []
        for key, tree in list(self._trees.items()):
            rebuilt = self.full_build(key)
            if rebuilt.root != tree.root or rebuilt.parent != tree.parent:
                get_logger("chord.incremental").warning(
                    "incremental tree for key %d diverged from the full "
                    "rebuild; adopting the rebuild",
                    key,
                )
                self._trees[key] = rebuilt
                mismatches.append(key)
        return tuple(mismatches)

    def replay(self, events: Iterable[tuple[str, int]]) -> list[DatUpdateReport]:
        """Apply a sequence of ``(kind, ident)`` events, collecting reports."""
        return [self.apply(kind, ident) for kind, ident in events]

"""Chord structured P2P overlay (Stoica et al., SIGCOMM 2001).

Two complementary models are provided, mirroring the paper's prototype:

* **Static analytical model** — :class:`~repro.chord.ring.StaticRing` holds a
  sorted snapshot of node identifiers and answers successor/predecessor and
  finger queries exactly. This is what the large-scale (up to 8192-node)
  tree-property experiments use; it corresponds to a converged overlay.

* **Dynamic protocol model** — :class:`~repro.chord.node.ChordProtocolNode`
  implements join / leave / stabilize / fix-fingers over a pluggable
  transport (discrete-event simulator or real UDP), used for churn and
  message-overhead experiments.

Identifier assignment strategies (random, uniform, Adler-style probing) live
in :mod:`repro.chord.idgen` and :mod:`repro.chord.probing`.
"""

from repro.chord.idspace import IdSpace
from repro.chord.hashing import sha1_id, LocalityPreservingHash
from repro.chord.fingers import FingerTable
from repro.chord.ring import StaticRing
from repro.chord.routing import finger_route, closest_preceding_finger, RouteResult
from repro.chord.idgen import (
    IdAssigner,
    RandomIdAssigner,
    UniformIdAssigner,
    ProbingIdAssigner,
    make_assigner,
)
from repro.chord.broadcast import BroadcastService, broadcast_tree
from repro.chord.fastbuild import build_dat_fast
from repro.chord.fof import FofCache, FofMaintainer
from repro.chord.host import ChordHost, FingeredHost

__all__ = [
    "ChordHost",
    "FingeredHost",
    "IdSpace",
    "sha1_id",
    "LocalityPreservingHash",
    "FingerTable",
    "StaticRing",
    "finger_route",
    "closest_preceding_finger",
    "RouteResult",
    "IdAssigner",
    "RandomIdAssigner",
    "UniformIdAssigner",
    "ProbingIdAssigner",
    "make_assigner",
    "BroadcastService",
    "broadcast_tree",
    "build_dat_fast",
    "FofCache",
    "FofMaintainer",
]

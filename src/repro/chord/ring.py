"""Static (converged) Chord ring model.

:class:`StaticRing` is a snapshot of a stabilized Chord overlay: a sorted set
of node identifiers plus exact successor/predecessor/finger queries answered
with binary search. The large-scale experiments (tree properties up to 8192
nodes, Fig. 7/8) run against this model, exactly as the paper's analysis
assumes a converged overlay. The dynamic protocol in
:mod:`repro.chord.node` converges to the same structure — an invariant the
integration tests assert.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Iterable, Iterator

import numpy as np

from repro.chord.fingers import FingerTable
from repro.chord.idspace import IdSpace
from repro.errors import DuplicateNodeError, EmptyRingError, UnknownNodeError

__all__ = ["StaticRing"]


class StaticRing:
    """A converged Chord ring over a set of node identifiers.

    Parameters
    ----------
    space:
        The identifier space.
    nodes:
        Initial node identifiers (need not be sorted; duplicates rejected).
    """

    def __init__(self, space: IdSpace, nodes: Iterable[int] = ()) -> None:
        self.space = space
        self._nodes: list[int] = []
        seen: set[int] = set()
        for ident in nodes:
            space.validate(ident)
            if ident in seen:
                raise DuplicateNodeError(f"duplicate node identifier {ident}")
            seen.add(ident)
        self._nodes = sorted(seen)
        self._node_set = seen
        self._version = 0

    # ------------------------------------------------------------------ #
    # Collection protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[int]:
        return iter(self._nodes)

    def __contains__(self, ident: int) -> bool:
        return ident in self._node_set

    @property
    def nodes(self) -> list[int]:
        """Sorted node identifiers (copy-safe view; do not mutate)."""
        return self._nodes

    @property
    def version(self) -> int:
        """Monotone membership-change counter.

        Incremented by every :meth:`add` / :meth:`remove`, letting derived
        caches (finger tables, the incremental maintenance engine) detect
        out-of-band ring mutation cheaply instead of comparing node lists.
        """
        return self._version

    def node_array(self) -> np.ndarray:
        """Sorted node identifiers as a NumPy array (uint64 when it fits)."""
        if self.space.bits <= 63:
            return np.asarray(self._nodes, dtype=np.uint64)
        return np.asarray(self._nodes, dtype=object)

    # ------------------------------------------------------------------ #
    # Membership changes
    # ------------------------------------------------------------------ #

    def add(self, ident: int) -> None:
        """Insert a node (O(n) list insert; rings are built once, queried often)."""
        self.space.validate(ident)
        if ident in self._node_set:
            raise DuplicateNodeError(f"duplicate node identifier {ident}")
        insort(self._nodes, ident)
        self._node_set.add(ident)
        self._version += 1

    def remove(self, ident: int) -> None:
        """Remove a node."""
        if ident not in self._node_set:
            raise UnknownNodeError(ident)
        index = bisect_left(self._nodes, ident)
        del self._nodes[index]
        self._node_set.remove(ident)
        self._version += 1

    # ------------------------------------------------------------------ #
    # Consistent-hashing queries
    # ------------------------------------------------------------------ #

    def _require_nodes(self) -> None:
        if not self._nodes:
            raise EmptyRingError("operation requires a non-empty ring")

    def successor(self, key: int) -> int:
        """First node whose identifier equals or follows ``key`` clockwise."""
        self._require_nodes()
        self.space.validate(key)
        index = bisect_left(self._nodes, key)
        if index == len(self._nodes):
            return self._nodes[0]
        return self._nodes[index]

    def predecessor(self, key: int) -> int:
        """Last node whose identifier strictly precedes ``key`` clockwise."""
        self._require_nodes()
        self.space.validate(key)
        index = bisect_left(self._nodes, key)
        if index == 0:
            return self._nodes[-1]
        return self._nodes[index - 1]

    def successor_of_node(self, ident: int) -> int:
        """The node immediately following node ``ident`` on the ring."""
        if ident not in self._node_set:
            raise UnknownNodeError(ident)
        index = bisect_right(self._nodes, ident)
        return self._nodes[index % len(self._nodes)]

    def predecessor_of_node(self, ident: int) -> int:
        """The node immediately preceding node ``ident`` on the ring."""
        if ident not in self._node_set:
            raise UnknownNodeError(ident)
        index = bisect_left(self._nodes, ident)
        return self._nodes[index - 1]  # index-1 == -1 wraps correctly

    def index_of(self, ident: int) -> int:
        """Position of member ``ident`` in the sorted node list."""
        if ident not in self._node_set:
            raise UnknownNodeError(ident)
        return bisect_left(self._nodes, ident)

    def nodes_in_interval(self, lo: int, hi: int) -> list[int]:
        """Members in the clockwise *closed* interval ``[lo, hi]``.

        The interval wraps past the top of the space when ``lo > hi``;
        ``lo == hi`` denotes the single-identifier interval (matching
        :meth:`IdSpace.in_closed`). Used by the incremental maintenance
        engine to enumerate the nodes whose finger-limit ``g(x)`` value
        shifted after a membership change.
        """
        self.space.validate(lo)
        self.space.validate(hi)
        if not self._nodes:
            return []
        if lo <= hi:
            return self._nodes[bisect_left(self._nodes, lo) : bisect_right(self._nodes, hi)]
        return (
            self._nodes[bisect_left(self._nodes, lo) :]
            + self._nodes[: bisect_right(self._nodes, hi)]
        )

    def gap_before(self, ident: int) -> int:
        """Clockwise distance from ``ident``'s predecessor to ``ident``.

        This is the slice of the identifier space owned by ``ident`` under
        consistent hashing; identifier probing (Sec. 3.5) splits the largest
        such gap.
        """
        if len(self._nodes) == 1:
            return self.space.size
        return self.space.cw(self.predecessor_of_node(ident), ident)

    def gaps(self) -> dict[int, int]:
        """Owned-interval length for every node."""
        return {ident: self.gap_before(ident) for ident in self._nodes}

    def mean_gap(self) -> float:
        """Average inter-node distance ``d0 = 2^b / n``."""
        self._require_nodes()
        return self.space.mean_gap(len(self._nodes))

    def gap_ratio(self) -> float:
        """Ratio of the largest to the smallest inter-node gap.

        Random identifiers give a ratio of ``O(log n)``; identifier probing
        bounds it by a constant (Adler et al., referenced in Sec. 3.5).
        """
        gaps = list(self.gaps().values())
        return max(gaps) / min(gaps)

    # ------------------------------------------------------------------ #
    # Finger tables
    # ------------------------------------------------------------------ #

    def finger_entries(self, ident: int) -> list[int]:
        """Finger entries of node ``ident``: slot ``j`` -> successor(ident + 2^j)."""
        if ident not in self._node_set:
            raise UnknownNodeError(ident)
        return [
            self.successor(self.space.finger_start(ident, j))
            for j in range(self.space.bits)
        ]

    def finger_table(self, ident: int) -> FingerTable:
        """Build the full converged finger table of node ``ident``."""
        return FingerTable(
            space=self.space, owner=ident, entries=self.finger_entries(ident)
        )

    def all_finger_tables(self) -> dict[int, FingerTable]:
        """Finger tables of every node (O(n·b·log n) — fine up to 8192·32)."""
        return {ident: self.finger_table(ident) for ident in self._nodes}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"StaticRing(bits={self.space.bits}, n={len(self._nodes)})"

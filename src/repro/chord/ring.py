"""Static (converged) Chord ring model.

:class:`StaticRing` is a snapshot of a stabilized Chord overlay: a sorted set
of node identifiers plus exact successor/predecessor/finger queries answered
with binary search. The large-scale experiments (tree properties up to
~10^5–10^6 nodes, Fig. 7/8) run against this model, exactly as the paper's
analysis assumes a converged overlay. The dynamic protocol in
:mod:`repro.chord.node` converges to the same structure — an invariant the
integration tests assert.

Two storage modes back the same API:

* **object mode** (small rings) — a sorted ``list[int]`` plus a membership
  set, answered with :mod:`bisect`. This is the reference implementation;
  the incremental maintenance engine and the protocol tests run against it.
* **array mode** (``len(ring) >= ARRAY_BACKED_THRESHOLD`` and
  ``bits <= 62``) — a :class:`~repro.chord.ringarray.RingArray` sorted
  ``int64`` vector answered with ``searchsorted``, holding no per-node
  Python objects. ``nodes`` still materializes the classic list view on
  demand (cached), so existing callers keep working; hot paths use
  :meth:`id_index` / :meth:`node_array` instead.

Mode selection is automatic; pass ``array_backed=True/False`` to force it
(tests exercise both modes at every size).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.chord.fingers import FingerTable
from repro.chord.idspace import IdSpace
from repro.chord.ringarray import ARRAY_MAX_BITS, RingArray
from repro.errors import (
    DuplicateNodeError,
    EmptyRingError,
    IdentifierError,
    UnknownNodeError,
)

__all__ = ["ARRAY_BACKED_THRESHOLD", "StaticRing"]

#: Ring size at which a freshly constructed ring switches to array storage.
ARRAY_BACKED_THRESHOLD = 16384


class StaticRing:
    """A converged Chord ring over a set of node identifiers.

    Parameters
    ----------
    space:
        The identifier space.
    nodes:
        Initial node identifiers (need not be sorted; duplicates rejected).
    array_backed:
        Force the storage mode; ``None`` (default) picks array storage for
        rings of at least :data:`ARRAY_BACKED_THRESHOLD` members in spaces
        of at most 62 bits.
    """

    def __init__(
        self,
        space: IdSpace,
        nodes: Iterable[int] = (),
        array_backed: bool | None = None,
    ) -> None:
        self.space = space
        seen: set[int] = set()
        for ident in nodes:
            space.validate(ident)
            if ident in seen:
                raise DuplicateNodeError(f"duplicate node identifier {ident}")
            seen.add(ident)
        self._version = 0
        self._init_storage(sorted(seen), array_backed)

    @classmethod
    def from_sorted_ids(
        cls,
        space: IdSpace,
        ids: Sequence[int] | np.ndarray,
        array_backed: bool | None = None,
    ) -> "StaticRing":
        """Build a ring from already-sorted, strictly increasing identifiers.

        Skips the per-element Python validation loop of the constructor —
        the sortedness/range checks run vectorized — which is what makes
        10^5–10^6-node ring construction cheap. Raises on unsorted or
        duplicate input.
        """
        arr = np.ascontiguousarray(ids, dtype=np.int64)
        if arr.size:
            if int(arr[0]) < 0 or int(arr[-1]) > space.max_id:
                raise IdentifierError(
                    f"identifiers outside [0, 2^{space.bits})"
                )
            if arr.size > 1 and not bool((arr[1:] > arr[:-1]).all()):
                raise DuplicateNodeError("ids must be sorted and strictly increasing")
        ring = cls.__new__(cls)
        ring.space = space
        ring._version = 0
        ring._init_storage_from_array(arr, array_backed)
        return ring

    # ------------------------------------------------------------------ #
    # Storage modes
    # ------------------------------------------------------------------ #

    def _init_storage(
        self, sorted_nodes: list[int], array_backed: bool | None
    ) -> None:
        if self._pick_array_mode(len(sorted_nodes), array_backed):
            self._arr: RingArray | None = RingArray(
                self.space,
                np.array(sorted_nodes, dtype=np.int64),
                trusted=True,
            )
            self._nodes: list[int] | None = None
            self._node_set: set[int] | None = None
        else:
            self._arr = None
            self._nodes = sorted_nodes
            self._node_set = set(sorted_nodes)
        self._nodes_cache: list[int] | None = None
        self._index_cache: RingArray | None = None
        self._index_cache_version = -1

    def _init_storage_from_array(
        self, arr: np.ndarray, array_backed: bool | None
    ) -> None:
        if self._pick_array_mode(int(arr.size), array_backed):
            self._arr = RingArray(self.space, arr, trusted=True)
            self._nodes = None
            self._node_set = None
        else:
            self._arr = None
            self._nodes = [int(v) for v in arr]
            self._node_set = set(self._nodes)
        self._nodes_cache = None
        self._index_cache = None
        self._index_cache_version = -1

    def _pick_array_mode(self, n: int, array_backed: bool | None) -> bool:
        if array_backed is None:
            return n >= ARRAY_BACKED_THRESHOLD and self.space.bits <= ARRAY_MAX_BITS
        if array_backed and self.space.bits > ARRAY_MAX_BITS:
            raise IdentifierError(
                f"array-backed rings require bits <= {ARRAY_MAX_BITS}, "
                f"got {self.space.bits}"
            )
        return array_backed

    @property
    def array_backed(self) -> bool:
        """True when the membership lives in an int64 vector (array mode)."""
        return self._arr is not None

    # ------------------------------------------------------------------ #
    # Collection protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        if self._arr is not None:
            return len(self._arr)
        assert self._nodes is not None
        return len(self._nodes)

    def __iter__(self) -> Iterator[int]:
        if self._arr is not None:
            return iter(self.nodes)
        assert self._nodes is not None
        return iter(self._nodes)

    def __contains__(self, ident: int) -> bool:
        if self._arr is not None:
            return self._arr.contains(ident)
        assert self._node_set is not None
        return ident in self._node_set

    @property
    def nodes(self) -> list[int]:
        """Sorted node identifiers (copy-safe view; do not mutate).

        In array mode the list is materialized from the identifier vector
        on first access and cached until the next membership change; large-
        scale callers should prefer :meth:`node_array` / :meth:`id_index`,
        which stay array-native.
        """
        if self._arr is not None:
            if self._nodes_cache is None:
                self._nodes_cache = self._arr.ids.tolist()
            return self._nodes_cache
        assert self._nodes is not None
        return self._nodes

    @property
    def version(self) -> int:
        """Monotone membership-change counter.

        Incremented by every :meth:`add` / :meth:`remove`, letting derived
        caches (finger tables, the incremental maintenance engine) detect
        out-of-band ring mutation cheaply instead of comparing node lists.
        """
        return self._version

    def node_array(self) -> np.ndarray:
        """Sorted node identifiers as a NumPy array (uint64 when it fits)."""
        if self._arr is not None:
            return self._arr.ids.astype(np.uint64)
        if self.space.bits <= 63:
            return np.asarray(self.nodes, dtype=np.uint64)
        return np.asarray(self.nodes, dtype=object)

    def id_index(self) -> RingArray:
        """Array-backed view of the membership (``bits <= 62`` only).

        Array-mode rings return their storage directly; object-mode rings
        build the vector once and cache it until the next membership
        change. This is the one sorted-id vector every vectorized consumer
        (:mod:`repro.chord.fastbuild`, the incremental engine's rebuilds,
        the scale pipeline) shares.
        """
        if self._arr is not None:
            return self._arr
        if self.space.bits > ARRAY_MAX_BITS:
            raise IdentifierError(
                f"id_index requires bits <= {ARRAY_MAX_BITS}, got {self.space.bits}"
            )
        if self._index_cache is None or self._index_cache_version != self._version:
            self._index_cache = RingArray(
                self.space,
                np.array(self.nodes, dtype=np.int64),
                trusted=True,
            )
            self._index_cache_version = self._version
        return self._index_cache

    # ------------------------------------------------------------------ #
    # Membership changes
    # ------------------------------------------------------------------ #

    def _bump_version(self) -> None:
        self._version += 1
        self._nodes_cache = None

    def add(self, ident: int) -> None:
        """Insert a node (O(n) shift; rings are built once, queried often)."""
        if self._arr is not None:
            self._arr.insert(ident)  # validates + rejects duplicates
        else:
            self.space.validate(ident)
            assert self._nodes is not None and self._node_set is not None
            if ident in self._node_set:
                raise DuplicateNodeError(f"duplicate node identifier {ident}")
            insort(self._nodes, ident)
            self._node_set.add(ident)
        self._bump_version()

    def remove(self, ident: int) -> None:
        """Remove a node."""
        if self._arr is not None:
            self._arr.delete(ident)  # raises UnknownNodeError when absent
        else:
            assert self._nodes is not None and self._node_set is not None
            if ident not in self._node_set:
                raise UnknownNodeError(ident)
            index = bisect_left(self._nodes, ident)
            del self._nodes[index]
            self._node_set.remove(ident)
        self._bump_version()

    # ------------------------------------------------------------------ #
    # Consistent-hashing queries
    # ------------------------------------------------------------------ #

    def _require_nodes(self) -> None:
        if not len(self):
            raise EmptyRingError("operation requires a non-empty ring")

    def successor(self, key: int) -> int:
        """First node whose identifier equals or follows ``key`` clockwise."""
        if self._arr is not None:
            return self._arr.successor(key)
        self._require_nodes()
        self.space.validate(key)
        assert self._nodes is not None
        index = bisect_left(self._nodes, key)
        if index == len(self._nodes):
            return self._nodes[0]
        return self._nodes[index]

    def predecessor(self, key: int) -> int:
        """Last node whose identifier strictly precedes ``key`` clockwise."""
        if self._arr is not None:
            return self._arr.predecessor(key)
        self._require_nodes()
        self.space.validate(key)
        assert self._nodes is not None
        index = bisect_left(self._nodes, key)
        if index == 0:
            return self._nodes[-1]
        return self._nodes[index - 1]

    def successor_of_node(self, ident: int) -> int:
        """The node immediately following node ``ident`` on the ring."""
        if self._arr is not None:
            return self._arr.successor_of_index(self._arr.index_of(ident))
        if ident not in self:
            raise UnknownNodeError(ident)
        assert self._nodes is not None
        index = bisect_right(self._nodes, ident)
        return self._nodes[index % len(self._nodes)]

    def predecessor_of_node(self, ident: int) -> int:
        """The node immediately preceding node ``ident`` on the ring."""
        if self._arr is not None:
            return self._arr.predecessor_of_index(self._arr.index_of(ident))
        if ident not in self:
            raise UnknownNodeError(ident)
        assert self._nodes is not None
        index = bisect_left(self._nodes, ident)
        return self._nodes[index - 1]  # index-1 == -1 wraps correctly

    def index_of(self, ident: int) -> int:
        """Position of member ``ident`` in the sorted node list."""
        if self._arr is not None:
            return self._arr.index_of(ident)
        if ident not in self:
            raise UnknownNodeError(ident)
        assert self._nodes is not None
        return bisect_left(self._nodes, ident)

    def nodes_in_interval(self, lo: int, hi: int) -> list[int]:
        """Members in the clockwise *closed* interval ``[lo, hi]``.

        The interval wraps past the top of the space when ``lo > hi``;
        ``lo == hi`` denotes the single-identifier interval (matching
        :meth:`IdSpace.in_closed`). Used by the incremental maintenance
        engine to enumerate the nodes whose finger-limit ``g(x)`` value
        shifted after a membership change.
        """
        if self._arr is not None:
            return self._arr.slice_closed(lo, hi).tolist()
        self.space.validate(lo)
        self.space.validate(hi)
        assert self._nodes is not None
        if not self._nodes:
            return []
        if lo <= hi:
            return self._nodes[bisect_left(self._nodes, lo) : bisect_right(self._nodes, hi)]
        return (
            self._nodes[bisect_left(self._nodes, lo) :]
            + self._nodes[: bisect_right(self._nodes, hi)]
        )

    def gap_before(self, ident: int) -> int:
        """Clockwise distance from ``ident``'s predecessor to ``ident``.

        This is the slice of the identifier space owned by ``ident`` under
        consistent hashing; identifier probing (Sec. 3.5) splits the largest
        such gap.
        """
        if len(self) == 1:
            if ident not in self:
                raise UnknownNodeError(ident)
            return self.space.size
        return self.space.cw(self.predecessor_of_node(ident), ident)

    def gaps(self) -> dict[int, int]:
        """Owned-interval length for every node."""
        if self._arr is not None:
            return dict(zip(self.nodes, self._arr.gaps().tolist()))
        return {ident: self.gap_before(ident) for ident in self.nodes}

    def gaps_array(self) -> np.ndarray:
        """Owned-interval lengths aligned with the sorted node order.

        Array-native view of :meth:`gaps` for the large-scale path (no
        per-node Python objects).
        """
        self._require_nodes()
        return self.id_index().gaps()

    def mean_gap(self) -> float:
        """Average inter-node distance ``d0 = 2^b / n``."""
        self._require_nodes()
        return self.space.mean_gap(len(self))

    def gap_ratio(self) -> float:
        """Ratio of the largest to the smallest inter-node gap.

        Random identifiers give a ratio of ``O(log n)``; identifier probing
        bounds it by a constant (Adler et al., referenced in Sec. 3.5).
        """
        if self._arr is not None or self.space.bits <= ARRAY_MAX_BITS:
            gaps_arr = self.gaps_array()
            return int(gaps_arr.max()) / int(gaps_arr.min())
        gaps = list(self.gaps().values())
        return max(gaps) / min(gaps)

    # ------------------------------------------------------------------ #
    # Finger tables
    # ------------------------------------------------------------------ #

    def finger_entries(self, ident: int) -> list[int]:
        """Finger entries of node ``ident``: slot ``j`` -> successor(ident + 2^j)."""
        if ident not in self:
            raise UnknownNodeError(ident)
        return [
            self.successor(self.space.finger_start(ident, j))
            for j in range(self.space.bits)
        ]

    def finger_table(self, ident: int) -> FingerTable:
        """Build the full converged finger table of node ``ident``."""
        return FingerTable(
            space=self.space, owner=ident, entries=self.finger_entries(ident)
        )

    def all_finger_tables(self) -> dict[int, FingerTable]:
        """Finger tables of every node (O(n·b·log n) — fine up to 8192·32)."""
        return {ident: self.finger_table(ident) for ident in self.nodes}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = "array" if self._arr is not None else "object"
        return f"StaticRing(bits={self.space.bits}, n={len(self)}, {mode})"

"""Orchestration of many protocol nodes over one transport.

:class:`ChordNetwork` builds a live overlay node by node (optionally with
identifier-probing joins), drives stabilization until the overlay converges
to the ideal ring, and exports :class:`~repro.chord.ring.StaticRing`
snapshots so the analytical tooling can inspect a protocol-built network.
It works over any transport; with :class:`~repro.sim.simnet.SimTransport`
time is virtual and convergence checks are deterministic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.chord.fingers import FingerTable
from repro.chord.idspace import IdSpace
from repro.chord.node import ChordConfig, ChordProtocolNode
from repro.chord.ring import StaticRing
from repro.errors import RingError
from repro.sim.messages import Message
from repro.sim.simnet import SimTransport
from repro.sim.transport import Transport
from repro.util.rng import ensure_rng

if TYPE_CHECKING:
    from repro.chord.block import ChordNodeBlock

__all__ = ["ChordNetwork"]


class ChordNetwork:
    """A managed collection of live Chord nodes.

    Parameters
    ----------
    space:
        Shared identifier space.
    transport:
        Message substrate. The convergence helpers that advance virtual
        time require a :class:`SimTransport`.
    config:
        Protocol configuration applied to every node.
    """

    def __init__(
        self,
        space: IdSpace,
        transport: Transport,
        config: ChordConfig | None = None,
    ) -> None:
        self.space = space
        self.transport = transport
        self.config = config or ChordConfig()
        self.nodes: dict[int, ChordProtocolNode] = {}

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #

    def create_first(self, ident: int) -> ChordProtocolNode:
        """Bootstrap the ring with its first node."""
        if self.nodes:
            raise RingError("ring already bootstrapped; use add_node()")
        node = ChordProtocolNode(ident, self.space, self.transport, self.config)
        node.create()
        self.nodes[ident] = node
        return node

    def add_node(self, ident: int, bootstrap: int | None = None) -> ChordProtocolNode:
        """Join a new node through ``bootstrap`` (default: any existing node)."""
        if not self.nodes:
            return self.create_first(ident)
        if ident in self.nodes:
            raise RingError(f"node {ident} already in the network")
        gateway = bootstrap if bootstrap is not None else next(iter(self.nodes))
        node = ChordProtocolNode(ident, self.space, self.transport, self.config)
        node.join(gateway)
        self.nodes[ident] = node
        return node

    def probe_join(
        self,
        rng: int | np.random.Generator | None = None,
        bootstrap: int | None = None,
    ) -> int | None:
        """Request a probing-designated identifier from the overlay (Sec. 4).

        Sends ``probe_join`` with a random point through a well-known node
        and returns the designated identifier (``None`` until the reply
        arrives — with a sim transport, call :meth:`settle` or inspect the
        returned box after running the engine).
        """
        if not self.nodes:
            return None
        generator = ensure_rng(rng)
        point = int(generator.integers(0, self.space.size))
        gateway_id = bootstrap if bootstrap is not None else next(iter(self.nodes))
        gateway = self.nodes[gateway_id]
        result: dict[str, int | None] = {"designated": None}

        def route_done(successor: int, _path: list[int]) -> None:
            request = Message(
                kind="probe_join",
                source=gateway.ident,
                destination=successor,
                payload={"point": point},
            )

            def on_reply(reply: Message) -> None:
                result["designated"] = reply.payload["designated"]

            gateway.net.call(request, on_reply)

        gateway.lookup(point, route_done)
        if isinstance(self.transport, SimTransport):
            self.transport.run(until=self.transport.now() + 5 * self.config.rpc_timeout)
        return result["designated"]

    def add_node_probing(
        self,
        rng: int | np.random.Generator | None = None,
        bootstrap: int | None = None,
    ) -> ChordProtocolNode | None:
        """Join a node whose identifier is designated by probing (Sec. 4).

        Runs the ``probe_join`` exchange to get a designated identifier,
        then performs an ordinary join with it. Returns the new node, or
        ``None`` when the probe did not resolve (empty network, probe
        timeout) — callers can fall back to a random identifier.
        """
        designated = self.probe_join(rng=rng, bootstrap=bootstrap)
        if designated is None or designated in self.nodes:
            return None
        return self.add_node(designated, bootstrap=bootstrap)

    def remove_node(self, ident: int, graceful: bool = True) -> None:
        """Depart a node (gracefully or by crash)."""
        node = self.nodes.pop(ident)
        if graceful:
            node.leave()
        else:
            node.crash()

    # ------------------------------------------------------------------ #
    # Convergence helpers (virtual time; SimTransport only)
    # ------------------------------------------------------------------ #

    def _require_sim(self) -> SimTransport:
        if not isinstance(self.transport, SimTransport):
            raise RingError("time-driven helpers require a SimTransport")
        return self.transport

    def settle(self, duration: float) -> None:
        """Advance virtual time by ``duration`` (stabilization keeps running)."""
        sim = self._require_sim()
        sim.run(until=sim.now() + duration)

    def settle_until_converged(
        self, max_rounds: int = 200, round_duration: float | None = None
    ) -> int:
        """Run until the overlay matches the ideal ring; returns rounds used.

        Raises :class:`RingError` if convergence is not reached within
        ``max_rounds`` — a real protocol bug, not a tuning issue, in a
        loss-free simulation.
        """
        period = (
            round_duration
            if round_duration is not None
            else max(self.config.stabilize_interval, self.config.fix_fingers_interval)
        )
        for round_index in range(1, max_rounds + 1):
            self.settle(period)
            if self.is_converged():
                return round_index
        raise RingError(
            f"overlay failed to converge within {max_rounds} rounds "
            f"({len(self.nodes)} nodes)"
        )

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #

    def ideal_ring(self) -> StaticRing:
        """The converged ring implied by the current membership."""
        return StaticRing(self.space, self.nodes.keys())

    def is_converged(self, check_fingers: bool = False) -> bool:
        """True when every node's successor/predecessor (and optionally all
        finger slots) match the ideal ring."""
        if not self.nodes:
            return True
        ideal = self.ideal_ring()
        for ident, node in self.nodes.items():
            if node.successor != ideal.successor_of_node(ident):
                return False
            expected_pred = ideal.predecessor_of_node(ident)
            if len(self.nodes) > 1 and node.predecessor != expected_pred:
                return False
            if check_fingers:
                expected = ideal.finger_entries(ident)
                actual = node.finger_table().entries
                if actual != expected:
                    return False
        return True

    def finger_convergence_fraction(self) -> float:
        """Fraction of finger slots across all nodes matching the ideal ring."""
        if not self.nodes:
            return 1.0
        ideal = self.ideal_ring()
        total = 0
        correct = 0
        for ident, node in self.nodes.items():
            expected = ideal.finger_entries(ident)
            actual = node.finger_table().entries
            total += len(expected)
            correct += sum(1 for e, a in zip(expected, actual) if e == a)
        return correct / total if total else 1.0

    def snapshot_finger_tables(self) -> dict[int, FingerTable]:
        """Live finger tables of every node (as the DAT layer sees them)."""
        return {ident: node.finger_table() for ident, node in self.nodes.items()}

    def snapshot_block(self) -> "ChordNodeBlock":
        """Current membership as an array-backed protocol block.

        The bulk-simulation entry point: one shared ``(n, bits)`` finger
        matrix for the whole (converged) ring instead of ``n`` object
        tables. Built from :meth:`ideal_ring`, so it reflects the converged
        state — the object path remains the authority for mid-churn
        transients.
        """
        from repro.chord.block import ChordNodeBlock

        return ChordNodeBlock.from_ring(self.ideal_ring())

    def build_incrementally(
        self,
        idents: Iterable[int],
        settle_between: float = 0.0,
    ) -> None:
        """Join a sequence of nodes, optionally settling between joins."""
        for ident in idents:
            self.add_node(ident)
            if settle_between > 0:
                self.settle(settle_between)

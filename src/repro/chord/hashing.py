"""Consistent hashing and locality-preserving hashing.

Two hash families are needed by the paper:

* **Consistent hashing** (Chord / DAT): SHA-1 of a name truncated into the
  identifier space. Used for node identifiers derived from addresses and
  for DAT *rendezvous keys* (e.g. ``sha1_id("cpu-usage", space)``).

* **Locality-preserving hashing** (MAAN, Sec. 2.2): a monotone map from a
  numeric attribute domain ``[lo, hi]`` onto the identifier circle so that
  numerically close values land on nearby nodes and range queries become
  contiguous identifier segments.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.chord.idspace import IdSpace
from repro.errors import IdentifierError

__all__ = ["sha1_id", "LocalityPreservingHash"]


def sha1_id(name: str | bytes, space: IdSpace) -> int:
    """Map ``name`` into ``space`` via SHA-1 (consistent hashing).

    The 160-bit digest is truncated to the top ``space.bits`` bits, which
    preserves the uniformity of SHA-1 for any ``bits <= 160``. For spaces
    wider than 160 bits the digest is extended by chained hashing.
    """
    data = name.encode("utf-8") if isinstance(name, str) else bytes(name)
    digest = hashlib.sha1(data).digest()
    while len(digest) * 8 < space.bits:
        digest += hashlib.sha1(digest).digest()
    value = int.from_bytes(digest, "big")
    excess = len(digest) * 8 - space.bits
    return value >> excess


@dataclass(frozen=True)
class LocalityPreservingHash:
    """Monotone hash ``H: [lo, hi] -> [0, 2^b)`` for one numeric attribute.

    MAAN's property (Sec. 2.2): ``H(v1) <= H(v2)`` iff ``v1 <= v2``, so the
    nodes responsible for a value range ``[l, u]`` are exactly the successors
    between ``successor(H(l))`` and ``successor(H(u))``.

    The map is affine over the attribute domain. Values are clamped to the
    domain rather than rejected, because live sensors occasionally report
    readings epsilon outside their nominal bounds.
    """

    space: IdSpace
    low: float
    high: float

    def __post_init__(self) -> None:
        if not self.high > self.low:
            raise IdentifierError(
                f"attribute domain requires high > low, got [{self.low}, {self.high}]"
            )

    def __call__(self, value: float) -> int:
        """Hash ``value`` (clamped into the domain) to an identifier."""
        clamped = min(max(float(value), self.low), self.high)
        fraction = (clamped - self.low) / (self.high - self.low)
        # Scale into [0, 2^b - 1]; the top of the domain maps to max_id so
        # the image stays inside the space.
        return min(int(fraction * self.space.size), self.space.max_id)

    def invert_approx(self, ident: int) -> float:
        """Approximate preimage of ``ident`` (useful for partitioning tests)."""
        self.space.validate(ident)
        fraction = ident / self.space.size
        return self.low + fraction * (self.high - self.low)

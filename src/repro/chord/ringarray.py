"""Array-backed ring index: a sorted identifier vector + searchsorted queries.

:class:`RingArray` is the storage engine behind large
:class:`~repro.chord.ring.StaticRing` instances (the 10^5–10^6-node
experiments): a freshly constructed ``StaticRing`` delegates here
automatically from ``ARRAY_BACKED_THRESHOLD`` (16384) members up, in
spaces of at most :data:`ARRAY_MAX_BITS` (62) bits — the same switchover
documented in ``docs/PERFORMANCE.md``. It holds the entire membership as
one sorted ``int64`` NumPy vector — no per-node Python objects — and
answers successor/predecessor/index queries with ``searchsorted``, scalar
or batched. The object-backed
ring keeps the exact same semantics at small n; the equivalence is asserted
pair-for-pair in ``tests/unit/test_ringarray.py`` and the property suite.

The module also hosts :func:`fast_probing_ids`, a bisect-based replica of
:class:`~repro.chord.idgen.ProbingIdAssigner`'s join-by-join procedure that
consumes the RNG identically and therefore produces bit-identical rings —
it exists purely because the object path's per-join call overhead dominates
ring construction beyond ~10^4 nodes.

Restriction: identifiers must fit in ``int64``, i.e. ``space.bits <= 62``.
Wider spaces stay on the object-backed path.
"""

from __future__ import annotations

from bisect import bisect_left, insort

import numpy as np

from repro.chord.idspace import IdSpace
from repro.errors import (
    DuplicateNodeError,
    EmptyRingError,
    IdentifierError,
    UnknownNodeError,
)
from repro.util.rng import ensure_rng

__all__ = ["ARRAY_MAX_BITS", "RingArray", "fast_probing_ids"]

#: Widest identifier space an int64 vector can hold exactly.
ARRAY_MAX_BITS = 62


class RingArray:
    """Sorted identifier vector with vectorized consistent-hashing queries.

    Parameters
    ----------
    space:
        The identifier space (``bits <= 62``).
    ids:
        Sorted, strictly increasing identifiers within the space. Validated
        vectorized on construction unless ``trusted=True`` (used by builders
        that construct identifiers valid-by-construction).
    """

    __slots__ = ("space", "_ids")

    def __init__(
        self, space: IdSpace, ids: np.ndarray, *, trusted: bool = False
    ) -> None:
        if space.bits > ARRAY_MAX_BITS:
            raise IdentifierError(
                f"RingArray requires bits <= {ARRAY_MAX_BITS}, got {space.bits}"
            )
        self.space = space
        arr = np.ascontiguousarray(ids, dtype=np.int64)
        if arr.ndim != 1:
            raise IdentifierError(f"ids must be one-dimensional, got {arr.ndim}D")
        if not trusted and arr.size:
            if int(arr[0]) < 0 or int(arr[-1]) > space.max_id:
                raise IdentifierError(
                    f"identifiers outside [0, 2^{space.bits}): "
                    f"range [{int(arr[0])}, {int(arr[-1])}]"
                )
            if arr.size > 1 and not bool((arr[1:] > arr[:-1]).all()):
                raise DuplicateNodeError(
                    "ids must be sorted and strictly increasing"
                )
        self._ids = arr

    # ------------------------------------------------------------------ #
    # Collection protocol
    # ------------------------------------------------------------------ #

    @property
    def ids(self) -> np.ndarray:
        """The sorted identifier vector (shared view; do not mutate)."""
        return self._ids

    def __len__(self) -> int:
        return int(self._ids.size)

    def contains(self, ident: int) -> bool:
        """Membership test by binary search (False for out-of-space values)."""
        if not self.space.contains(ident):
            return False
        pos = int(np.searchsorted(self._ids, ident))
        return pos < self._ids.size and int(self._ids[pos]) == ident

    def index_of(self, ident: int) -> int:
        """Position of member ``ident`` in the sorted vector."""
        if not self.contains(ident):
            raise UnknownNodeError(ident)
        return int(np.searchsorted(self._ids, ident))

    # ------------------------------------------------------------------ #
    # Mutation (O(n) vector shift — rings are built once, queried often)
    # ------------------------------------------------------------------ #

    def insert(self, ident: int) -> None:
        """Insert a new member, keeping the vector sorted."""
        self.space.validate(ident)
        pos = int(np.searchsorted(self._ids, ident))
        if pos < self._ids.size and int(self._ids[pos]) == ident:
            raise DuplicateNodeError(f"duplicate node identifier {ident}")
        self._ids = np.insert(self._ids, pos, ident)

    def delete(self, ident: int) -> None:
        """Remove a member."""
        pos = self.index_of(ident)
        self._ids = np.delete(self._ids, pos)

    # ------------------------------------------------------------------ #
    # Consistent-hashing queries
    # ------------------------------------------------------------------ #

    def _require_nodes(self) -> None:
        if not self._ids.size:
            raise EmptyRingError("operation requires a non-empty ring")

    def successor_index(self, key: int) -> int:
        """Index of ``successor(key)`` (wraps past the top of the ring)."""
        self._require_nodes()
        self.space.validate(key)
        pos = int(np.searchsorted(self._ids, key, side="left"))
        return 0 if pos == self._ids.size else pos

    def successor(self, key: int) -> int:
        """First member whose identifier equals or follows ``key`` clockwise."""
        return int(self._ids[self.successor_index(key)])

    def predecessor(self, key: int) -> int:
        """Last member whose identifier strictly precedes ``key`` clockwise."""
        self._require_nodes()
        self.space.validate(key)
        pos = int(np.searchsorted(self._ids, key, side="left"))
        return int(self._ids[pos - 1])  # pos==0 wraps to the top via -1

    def successor_of_index(self, index: int) -> int:
        """The member immediately following the member at ``index``."""
        self._require_nodes()
        return int(self._ids[(index + 1) % self._ids.size])

    def predecessor_of_index(self, index: int) -> int:
        """The member immediately preceding the member at ``index``."""
        self._require_nodes()
        return int(self._ids[index - 1])  # index-1 == -1 wraps correctly

    def successor_indices(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`successor_index` over an int64 key vector."""
        self._require_nodes()
        pos = np.searchsorted(self._ids, keys, side="left")
        pos[pos == self._ids.size] = 0
        return pos

    def successors(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`successor` over an int64 key vector."""
        return self._ids[self.successor_indices(keys)]

    def slice_closed(self, lo: int, hi: int) -> np.ndarray:
        """Members in the clockwise closed interval ``[lo, hi]``.

        Mirrors :meth:`StaticRing.nodes_in_interval`: wraps when
        ``lo > hi``; ``lo == hi`` denotes the single-identifier interval.
        """
        self.space.validate(lo)
        self.space.validate(hi)
        ids = self._ids
        if not ids.size:
            return ids[:0]
        if lo <= hi:
            left = int(np.searchsorted(ids, lo, side="left"))
            right = int(np.searchsorted(ids, hi, side="right"))
            return ids[left:right]
        left = int(np.searchsorted(ids, lo, side="left"))
        right = int(np.searchsorted(ids, hi, side="right"))
        return np.concatenate([ids[left:], ids[:right]])

    def gaps(self) -> np.ndarray:
        """Clockwise gap from each member's predecessor, aligned with ``ids``.

        A single-member ring owns the whole space, matching
        :meth:`StaticRing.gap_before`.
        """
        self._require_nodes()
        ids = self._ids
        if ids.size == 1:
            return np.array([self.space.size], dtype=np.int64)
        out = np.empty(ids.size, dtype=np.int64)
        out[1:] = ids[1:] - ids[:-1]
        out[0] = int(ids[0]) + self.space.size - int(ids[-1])
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RingArray(bits={self.space.bits}, n={len(self)})"


def _fast_probe_split(
    ids: list[int],
    space: IdSpace,
    generator: np.random.Generator,
    probe_multiplier: float,
) -> int:
    """One probing join against a sorted identifier list.

    Bit-identical replica of
    :func:`repro.chord.probing.probe_split_identifier` — same RNG draws in
    the same order, same candidate ordering and tie-breaking — with plain
    ``bisect`` bookkeeping instead of ring-object calls.
    """
    # Imported here: probing imports the ring module, which imports us.
    from repro.chord.probing import default_probe_count

    size = space.size
    k = len(ids)
    if k == 0:
        return int(generator.integers(0, size))

    point = int(generator.integers(0, size))
    count = min(default_probe_count(k, probe_multiplier), k)
    start = bisect_left(ids, point)
    if start == k:
        start = 0

    # max() keeps the first strictly-greatest gap, in clockwise candidate
    # order from successor(point) — the object path's tie-breaking.
    best = -1
    best_gap = -1
    for j in range(count):
        index = start + j
        if index >= k:
            index -= k
        if k == 1:
            gap = size
        elif index > 0:
            gap = ids[index] - ids[index - 1]
        else:
            gap = ids[0] + size - ids[k - 1]
        if gap > best_gap:
            best = index
            best_gap = gap

    if best_gap < 2:
        # Space is locally saturated; retry with fresh random points.
        for _ in range(64):
            candidate = int(generator.integers(0, size))
            pos = bisect_left(ids, candidate)
            if pos >= k or ids[pos] != candidate:
                return candidate
        raise RuntimeError("identifier space saturated; cannot place new node")

    predecessor = ids[best - 1] if best > 0 else ids[k - 1]
    return space.wrap(predecessor + best_gap // 2)


def fast_probing_ids(
    space: IdSpace,
    n_nodes: int,
    rng: int | np.random.Generator | None = None,
    probe_multiplier: float = 2.0,
) -> list[int]:
    """``n_nodes`` probing-assigned identifiers, sorted ascending.

    Produces exactly the membership
    :meth:`repro.chord.idgen.ProbingIdAssigner.build_ring` would, an order
    of magnitude faster — the property suite
    (``tests/property/test_prop_scale.py``) asserts the identity over
    random sizes and spaces.
    """
    if n_nodes < 0:
        raise ValueError(f"n_nodes must be non-negative, got {n_nodes}")
    if n_nodes > space.size:
        raise ValueError(
            f"cannot place {n_nodes} distinct nodes in a space of {space.size}"
        )
    generator = ensure_rng(rng)
    ids: list[int] = []
    for _ in range(n_nodes):
        insort(ids, _fast_probe_split(ids, space, generator, probe_multiplier))
    return ids

"""Fingers-of-fingers (FoF) — the prototype's Chord extension (paper Sec. 4).

"Each node keeps not only the information of its direct fingers, but also
the information of its fingers of fingers (FOF)." The FoF cache gives a
node a two-hop routing horizon: when forwarding a lookup it can consider
its fingers' fingers as candidate next-next hops and jump straight to the
best one, roughly halving hop counts. It is also the information base the
prototype's DAT layer uses to compute child sets locally (our
``children_resolver`` injection is the converged equivalent — DESIGN.md).

:class:`FofCache` holds the learned tables; :class:`FofMaintainer` drives
the periodic refresh over a transport and exposes the improved next-hop
choice. The cache is advisory: a stale entry can at worst cause one wasted
hop (the contacted node forwards normally), never incorrectness, because
candidates are still required not to overshoot the key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.chord.fingers import FingerTable
from repro.chord.host import FingeredHost
from repro.chord.idspace import IdSpace
from repro.net import RpcClient
from repro.sim.messages import Message

__all__ = ["FofCache", "FofMaintainer"]


@dataclass
class FofCache:
    """Learned finger tables of this node's fingers."""

    space: IdSpace
    #: finger ident -> that finger's entries (as last reported).
    tables: dict[int, list[int]] = field(default_factory=dict)

    def update(self, finger: int, entries: list[int]) -> None:
        """Record a finger's reported table."""
        self.tables[finger] = list(entries)

    def forget(self, finger: int) -> None:
        """Drop a departed finger's table."""
        self.tables.pop(finger, None)

    def known_nodes(self) -> set[int]:
        """Every node reachable within two hops via the cache."""
        nodes: set[int] = set(self.tables)
        for entries in self.tables.values():
            nodes.update(entries)
        return nodes

    def best_toward(self, owner: int, key: int) -> int | None:
        """The cached node most closely preceding-or-reaching ``key``.

        Considers both the cached fingers themselves and their entries
        (two-hop candidates). Returns ``None`` when nothing qualifies.
        """
        target = self.space.cw(owner, key)
        if target == 0:
            return None
        best: int | None = None
        best_distance = -1
        for node in self.known_nodes():
            if node == owner:
                continue
            distance = self.space.cw(owner, node)
            if distance <= target and distance > best_distance:
                best = node
                best_distance = distance
        return best


class FofMaintainer:
    """Periodic FoF refresh for one protocol node.

    Parameters
    ----------
    host:
        Object with ``ident``, ``space``, ``transport``, ``upcalls`` and a
        ``finger_table()`` method (a :class:`ChordProtocolNode`).
    interval:
        Seconds between refreshes of one finger's table (round-robin).
    """

    def __init__(self, host: FingeredHost, interval: float = 1.0) -> None:
        self.host = host
        self.interval = interval
        host_net = getattr(host, "net", None)
        self.net: RpcClient = (
            host_net
            if isinstance(host_net, RpcClient)
            else RpcClient(host.transport, host.ident)
        )
        self.cache = FofCache(space=host.space)
        self._cursor = 0
        self._running = False
        self._cancel: Callable[[], None] | None = None
        host.upcalls["get_fingers"] = self._on_get_fingers

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Begin periodic refresh."""
        if self._running:
            return
        self._running = True
        self._schedule()

    def stop(self) -> None:
        """Stop refreshing (cache retained)."""
        self._running = False
        if self._cancel is not None:
            self._cancel()
            self._cancel = None

    def close(self) -> None:
        """Stop and release the ``get_fingers`` upcall registration."""
        self.stop()
        # `==`, not `is`: bound-method objects are recreated per access.
        if self.host.upcalls.get("get_fingers") == self._on_get_fingers:
            self.host.upcalls.pop("get_fingers", None)

    def _schedule(self) -> None:
        if not self._running:
            return
        self._cancel = self.host.transport.schedule(self.interval, self._tick)

    def _tick(self) -> None:
        if not self._running:
            return
        self.refresh_next()
        self._schedule()

    def refresh_next(self) -> None:
        """Request the table of the next distinct finger (round-robin)."""
        table: FingerTable = self.host.finger_table()
        fingers = table.distinct_fingers()
        if not fingers:
            return
        self._cursor = (self._cursor + 1) % len(fingers)
        target = fingers[self._cursor]
        request = Message(
            kind="get_fingers", source=self.host.ident, destination=target, payload={}
        )

        def on_reply(reply: Message) -> None:
            self.cache.update(target, reply.payload["entries"])

        def on_timeout(_msg: Message) -> None:
            self.cache.forget(target)

        self.net.call(request, on_reply, on_timeout=on_timeout)

    def refresh_all(self) -> None:
        """Kick a refresh of every distinct finger (test convergence aid)."""
        table: FingerTable = self.host.finger_table()
        for _ in table.distinct_fingers():
            self.refresh_next()

    def _on_get_fingers(self, message: Message) -> Message:
        table: FingerTable = self.host.finger_table()
        return message.response(entries=list(table.entries))

    # ------------------------------------------------------------------ #
    # Routing improvement
    # ------------------------------------------------------------------ #

    def next_hop(self, key: int) -> int | None:
        """Best next hop toward ``key`` using fingers + FoF.

        At least as close as the plain finger choice; never overshoots.
        """
        table: FingerTable = self.host.finger_table()
        plain = table.closest_preceding(key)
        improved = self.cache.best_toward(self.host.ident, key)
        if improved is None:
            return plain
        if plain is None:
            return improved
        space = self.host.space
        if space.cw(self.host.ident, improved) > space.cw(self.host.ident, plain):
            return improved
        return plain

"""DHT broadcast over Chord fingers (paper Sec. 4's third primitive).

The DAT layer "leverages the three underlying Chord routines, i.e. route,
broadcast and upcall". Broadcast follows the classic finger-range scheme
(El-Ansary et al. / Li, Sollins & Lim, cited as [12]): the initiator hands
each distinct finger responsibility for the identifier arc up to the next
finger; each receiver recurses within its delegated arc. Every node
receives the message exactly once and the dissemination tree has height
O(log n) — invariants the property tests pin down.

Two implementations share the range logic:

* :func:`broadcast_tree` — the implied dissemination tree on a converged
  :class:`~repro.chord.ring.StaticRing` (for analysis and tests);
* :class:`BroadcastService` — a live upcall handler for protocol nodes /
  standalone hosts, delivering an application payload network-wide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.chord.fingers import FingerTable
from repro.chord.host import ChordHost
from repro.chord.ring import StaticRing
from repro.core.tree import DatTree
from repro.sim.messages import Message

__all__ = ["broadcast_children", "broadcast_tree", "BroadcastService"]


def broadcast_children(
    table: FingerTable, limit: int
) -> list[tuple[int, int]]:
    """The (child, child_limit) delegations for one broadcast step.

    ``limit`` is the exclusive end of the identifier arc this node is
    responsible for covering. Each distinct finger ``f_j`` strictly inside
    ``(owner, limit)`` is delegated the sub-arc up to the next finger (or
    ``limit`` for the last one).
    """
    space = table.space
    owner = table.owner
    span = space.cw(owner, limit)
    if span == 0:
        # Responsible for the whole ring (initiator case).
        span = space.size

    fingers: list[int] = []
    for node in table.entries:
        if node == owner or node in fingers:
            continue
        if 0 < space.cw(owner, node) < span:
            fingers.append(node)
    fingers.sort(key=lambda node: space.cw(owner, node))

    delegations: list[tuple[int, int]] = []
    for index, child in enumerate(fingers):
        child_limit = fingers[index + 1] if index + 1 < len(fingers) else limit
        delegations.append((child, child_limit))
    return delegations


def broadcast_tree(
    ring: StaticRing,
    initiator: int,
    tables: dict[int, FingerTable] | None = None,
) -> DatTree:
    """The dissemination tree of a broadcast started at ``initiator``.

    Returned as a :class:`DatTree` rooted at the initiator so all the tree
    metrics (height, branching, loads) apply directly.
    """
    if tables is None:
        tables = ring.all_finger_tables()
    parent: dict[int, int] = {}
    # (node, limit) work queue; initiator covers the full circle.
    queue: list[tuple[int, int]] = [(initiator, initiator)]
    while queue:
        node, limit = queue.pop()
        for child, child_limit in broadcast_children(tables[node], limit):
            parent[child] = node
            queue.append((child, child_limit))
    return DatTree(root=initiator, parent=parent, key=None)


@dataclass
class _Delivery:
    """Record of one delivered broadcast at a node."""

    broadcast_id: int
    initiator: int
    payload: Any


class BroadcastService:
    """Live broadcast layer for one node (upcall kind ``bcast``).

    Attach to any host with ``ident``/``space``/``transport``/``upcalls``
    (a :class:`~repro.chord.node.ChordProtocolNode` or a
    :class:`~repro.core.service.StandaloneDatHost`).

    Parameters
    ----------
    host:
        The hosting node.
    finger_provider:
        Returns the node's current finger table.
    on_deliver:
        Application callback ``(initiator, payload) -> None`` invoked once
        per broadcast.
    """

    _id_counter = 0

    def __init__(
        self,
        host: ChordHost,
        finger_provider: Callable[[], FingerTable],
        on_deliver: Callable[[int, Any], None] | None = None,
    ) -> None:
        self.host = host
        self.finger_provider = finger_provider
        self.on_deliver = on_deliver
        self.deliveries: list[_Delivery] = []
        self._seen: set[int] = set()
        host.upcalls["bcast"] = self._on_broadcast

    def close(self) -> None:
        """Detach from the host: release the ``bcast`` upcall registration.

        Without this, a departed node's service keeps handling broadcasts
        relayed to its ident for as long as the host object lives.
        """
        # `==`, not `is`: bound-method objects are recreated per access.
        if self.host.upcalls.get("bcast") == self._on_broadcast:
            self.host.upcalls.pop("bcast", None)

    def broadcast(self, payload: Any) -> int:
        """Start a network-wide broadcast from this node; returns its id."""
        BroadcastService._id_counter += 1
        broadcast_id = BroadcastService._id_counter
        self._deliver(broadcast_id, self.host.ident, payload)
        self._relay(broadcast_id, self.host.ident, payload, limit=self.host.ident)
        return broadcast_id

    def _relay(self, broadcast_id: int, initiator: int, payload: Any, limit: int) -> None:
        table = self.finger_provider()
        for child, child_limit in broadcast_children(table, limit):
            self.host.transport.send(
                Message(
                    kind="bcast",
                    source=self.host.ident,
                    destination=child,
                    payload={
                        "id": broadcast_id,
                        "initiator": initiator,
                        "limit": child_limit,
                        "data": payload,
                    },
                )
            )

    def _on_broadcast(self, message: Message) -> None:
        payload = message.payload
        broadcast_id = payload["id"]
        if broadcast_id in self._seen:
            return None  # duplicate under churn: deliver-once semantics
        self._deliver(broadcast_id, payload["initiator"], payload["data"])
        self._relay(broadcast_id, payload["initiator"], payload["data"], payload["limit"])
        return None

    def _deliver(self, broadcast_id: int, initiator: int, payload: Any) -> None:
        self._seen.add(broadcast_id)
        self.deliveries.append(
            _Delivery(broadcast_id=broadcast_id, initiator=initiator, payload=payload)
        )
        if self.on_deliver is not None:
            self.on_deliver(initiator, payload)

    def received(self, broadcast_id: int) -> bool:
        """True if this node has delivered the given broadcast."""
        return broadcast_id in self._seen

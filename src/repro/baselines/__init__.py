"""Baseline aggregation schemes the paper compares DAT against (Sec. 5.3)."""

from repro.baselines.centralized import (
    centralized_direct_loads,
    centralized_routed_loads,
    CentralizedAggregator,
)

__all__ = [
    "centralized_direct_loads",
    "centralized_routed_loads",
    "CentralizedAggregator",
]

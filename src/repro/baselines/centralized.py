"""The centralized aggregation baseline (paper Sec. 5.3, Fig. 8).

"Each node in the network except the root node itself must send their local
values to the root node directly. In addition, the closer a node precedes
the root node in the Chord identifier space, the more aggregation messages
it has to forward for other nodes due to the nature of the Chord finger
routing algorithm."

Two variants are provided:

* **routed** — every node ships its raw value to the root over Chord finger
  routing with *no in-network aggregation*; intermediate hops forward
  (and are loaded by) other nodes' values. This is the variant the Fig. 8(a)
  narrative describes.
* **direct** — every node sends one IP-direct message to the root (one
  logical hop). The root still melts under ``n - 1`` messages; forwarders
  carry nothing.

Loads use the library-wide accounting: messages sent + received per node.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterable, Mapping

from repro import telemetry
from repro.chord.fingers import FingerTable
from repro.chord.ring import StaticRing
from repro.chord.routing import finger_route
from repro.core.aggregates import Aggregate

__all__ = [
    "centralized_direct_loads",
    "centralized_routed_loads",
    "CentralizedAggregator",
]


def centralized_direct_loads(ring: StaticRing, key: int) -> dict[int, int]:
    """Per-node message loads when every node sends directly to the root."""
    root = ring.successor(key)
    loads: dict[int, int] = {}
    for node in ring:
        loads[node] = 1 if node != root else 0  # one send each
    loads[root] += len(ring) - 1  # root receives everything
    telemetry.count(
        "baseline_messages_total", float(len(ring) - 1), variant="direct"
    )
    return loads


def centralized_routed_loads(
    ring: StaticRing,
    key: int,
    tables: dict[int, FingerTable] | None = None,
) -> dict[int, int]:
    """Per-node message loads when every value is finger-routed to the root.

    Each node originates one message; every hop on its route counts one
    send at the forwarder and one receive at the next node. No aggregation
    happens en route — the root receives ``n - 1`` distinct value messages.
    """
    if tables is None:
        tables = ring.all_finger_tables()
    root = ring.successor(key)
    sent: dict[int, int] = defaultdict(int)
    received: dict[int, int] = defaultdict(int)
    for node in ring:
        if node == root:
            continue
        # Values are addressed to the root *node* (its identifier), matching
        # the DAT parent rule's orientation — a route targeting the raw key
        # would funnel every message through the key's predecessor instead
        # of spreading over the root's inbound fingers.
        route = finger_route(ring, node, root, tables=tables)
        hops = route.path
        for src, dst in zip(hops, hops[1:]):
            sent[src] += 1
            received[dst] += 1
    telemetry.count(
        "baseline_messages_total",
        float(sum(sent.values())),
        variant="routed",
    )
    return {node: sent[node] + received[node] for node in ring}


class CentralizedAggregator:
    """Convenience wrapper computing a global aggregate the centralized way.

    Functionally the result equals the DAT's (same aggregate function over
    the same values); only the message economics differ — which is the
    entire point of Fig. 8.
    """

    def __init__(self, ring: StaticRing, key: int, routed: bool = True) -> None:
        self.ring = ring
        self.key = key
        self.routed = routed
        self.root = ring.successor(key)

    def aggregate(self, values: Mapping[int, float], aggregate: Aggregate) -> Any:
        """Compute the global aggregate over per-node ``values``."""
        missing = [node for node in self.ring if node not in values]
        if missing:
            raise ValueError(f"missing values for {len(missing)} nodes: {missing[:5]}")
        return aggregate.aggregate(values[node] for node in self.ring)

    def message_loads(self) -> dict[int, int]:
        """Per-node loads for one aggregation round under this variant."""
        if self.routed:
            return centralized_routed_loads(self.ring, self.key)
        return centralized_direct_loads(self.ring, self.key)

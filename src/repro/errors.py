"""Exception hierarchy for the DAT reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with one ``except`` clause while still
letting programming errors (``TypeError``, ``ValueError`` raised by argument
validation) propagate naturally where that is more idiomatic.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class IdentifierError(ReproError, ValueError):
    """An identifier is outside the configured identifier space."""


class RingError(ReproError):
    """The Chord ring is in an invalid state for the requested operation."""


class EmptyRingError(RingError):
    """An operation requires at least one node but the ring is empty."""


class DuplicateNodeError(RingError):
    """A node identifier is already present in the ring."""


class UnknownNodeError(RingError, KeyError):
    """A node identifier is not present in the ring."""


class RoutingError(ReproError):
    """Finger routing failed to make progress toward the target key."""


class TreeError(ReproError):
    """A DAT tree violates a structural invariant."""


class AggregationError(ReproError):
    """An aggregation could not be computed or merged."""


class UnknownAggregateError(AggregationError, KeyError):
    """The requested aggregate function name is not registered."""


class TransportError(ReproError):
    """A message could not be delivered by the transport layer."""


class RpcTimeoutError(TransportError, TimeoutError):
    """An RPC did not receive a response within its deadline."""


class SimulationError(ReproError):
    """The discrete-event simulation engine hit an inconsistent state."""


class QueryError(ReproError):
    """A MAAN query is malformed or cannot be resolved."""


class SchemaError(ReproError, ValueError):
    """A resource description does not match its attribute schema."""


class MonitoringError(ReproError):
    """The P-GMA monitoring stack hit an operational error."""


class FleetError(ReproError):
    """The multi-process deployment harness hit an operational error."""


class FleetWireError(FleetError, ValueError):
    """A fleet control-plane frame is malformed."""

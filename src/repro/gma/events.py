"""Monitoring events flowing from sensors through producers (GMA model)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MonitoringEvent"]


@dataclass(frozen=True)
class MonitoringEvent:
    """One status observation.

    Parameters
    ----------
    timestamp:
        Observation time (trace slot time or transport clock).
    resource_id:
        The resource the reading describes.
    attribute:
        Attribute name, e.g. ``"cpu-usage"``.
    value:
        The reading.
    """

    timestamp: float
    resource_id: str
    attribute: str
    value: float

    def key(self) -> tuple[str, str]:
        """(resource, attribute) identity for latest-value tables."""
        return (self.resource_id, self.attribute)

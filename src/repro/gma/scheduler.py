"""The monitoring daemon loop: periodic refresh + aggregation scheduling.

P-GMA deployments run two recurring jobs per node: refreshing the MAAN
registrations of *dynamic* attributes (their values move around the ring
as they change) and recomputing the global aggregates consumers watch.
:class:`MonitoringScheduler` drives both over a
:class:`~repro.gma.monitor.GridMonitor`, advancing trace time in fixed
steps and recording the aggregate history — the loop behind a monitoring
dashboard, factored out of the examples so it is testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.gma.monitor import GridMonitor
from repro.util.validation import check_positive

__all__ = ["WatchSpec", "MonitoringScheduler"]


@dataclass(frozen=True)
class WatchSpec:
    """One recurring aggregate the scheduler maintains."""

    attribute: str
    aggregate: str = "avg"
    #: recompute every this-many scheduler steps.
    every_steps: int = 1

    def __post_init__(self) -> None:
        if self.every_steps <= 0:
            raise ValueError(f"every_steps must be positive, got {self.every_steps}")


@dataclass
class _Series:
    """Recorded history of one watch."""

    times: list[float] = field(default_factory=list)
    values: list[Any] = field(default_factory=list)

    def latest(self) -> Any:
        return self.values[-1] if self.values else None


class MonitoringScheduler:
    """Drives refresh/aggregation cycles on a GridMonitor.

    Parameters
    ----------
    monitor:
        The deployment to drive.
    step:
        Trace-time seconds per scheduler step.
    refresh_every_steps:
        How often dynamic MAAN registrations are refreshed (0 disables).
    """

    def __init__(
        self,
        monitor: GridMonitor,
        step: float = 10.0,
        refresh_every_steps: int = 6,
    ) -> None:
        check_positive("step", step)
        if refresh_every_steps < 0:
            raise ValueError(
                f"refresh_every_steps must be non-negative, got {refresh_every_steps}"
            )
        self.monitor = monitor
        self.step = float(step)
        self.refresh_every_steps = int(refresh_every_steps)
        self.watches: list[WatchSpec] = []
        self.series: dict[tuple[str, str], _Series] = {}
        self.now = 0.0
        self._steps = 0
        self.refresh_hops = 0

    def watch(
        self, attribute: str, aggregate: str = "avg", every_steps: int = 1
    ) -> WatchSpec:
        """Register a recurring aggregate; returns its spec."""
        spec = WatchSpec(attribute=attribute, aggregate=aggregate, every_steps=every_steps)
        self.watches.append(spec)
        self.series.setdefault((spec.attribute, spec.aggregate), _Series())
        return spec

    # ------------------------------------------------------------------ #
    # The loop
    # ------------------------------------------------------------------ #

    def run_steps(self, count: int) -> None:
        """Advance ``count`` steps, firing due refreshes and watches."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        for _ in range(count):
            self._steps += 1
            self.now = self._steps * self.step
            if (
                self.refresh_every_steps
                and self._steps % self.refresh_every_steps == 0
            ):
                self.refresh_hops += self.monitor.refresh_all(self.now)
            for spec in self.watches:
                if self._steps % spec.every_steps == 0:
                    outcome = self.monitor.aggregate(
                        spec.attribute, spec.aggregate, t=self.now
                    )
                    series = self.series[(spec.attribute, spec.aggregate)]
                    series.times.append(self.now)
                    series.values.append(outcome.value)

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    def latest(self, attribute: str, aggregate: str = "avg") -> Any:
        """Most recent value of one watch (None before its first firing)."""
        series = self.series.get((attribute, aggregate))
        return series.latest() if series else None

    def history(self, attribute: str, aggregate: str = "avg") -> list[tuple[float, Any]]:
        """Full (time, value) history of one watch."""
        series = self.series.get((attribute, aggregate))
        if series is None:
            return []
        return list(zip(series.times, series.values))

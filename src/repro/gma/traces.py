"""CPU-usage traces for the accuracy experiment (paper Sec. 5.4).

The paper replayed "a 2-hour long trace of the CPU usages on an 8-processor
Sun Fire v880 server at USC" onto 512 simulated nodes. That trace is not
public, so :class:`TraceGenerator` synthesizes one with the same structure:
an 8-CPU machine's total utilization sampled at a fixed period over 2 hours,
built from a slow load envelope, an AR(1) fluctuation, and occasional job
bursts. Fig. 9 only requires *some* ground-truth per-node series to compare
against the DAT-aggregated estimate, so any realistic series exercises the
identical code path (see DESIGN.md, substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import ensure_rng
from repro.util.validation import check_positive, check_probability

__all__ = ["CpuTrace", "TraceGenerator"]


@dataclass(frozen=True)
class CpuTrace:
    """A sampled utilization series for one machine.

    ``values[t]`` is total CPU utilization (percent, 0..100 * n_cpus mapped
    to 0..100) at slot ``t``; slots are ``period`` seconds apart.
    """

    values: np.ndarray
    period: float
    name: str = "cpu-usage"

    def __post_init__(self) -> None:
        if self.values.ndim != 1:
            raise ValueError("trace values must be one-dimensional")
        check_positive("period", self.period)

    @property
    def n_slots(self) -> int:
        """Number of samples."""
        return int(self.values.shape[0])

    @property
    def duration(self) -> float:
        """Covered wall-clock span in seconds."""
        return self.n_slots * self.period

    def at_time(self, t: float) -> float:
        """Value of the slot containing time ``t`` (clamped to the span)."""
        index = int(t / self.period)
        index = min(max(index, 0), self.n_slots - 1)
        return float(self.values[index])

    def at_slot(self, slot: int) -> float:
        """Value of slot ``slot`` (clamped)."""
        slot = min(max(slot, 0), self.n_slots - 1)
        return float(self.values[slot])

    def shifted(self, offset_slots: int, name: str | None = None) -> "CpuTrace":
        """Circularly time-shifted copy (per-node variation without changing
        the aggregate's distribution)."""
        return CpuTrace(
            values=np.roll(self.values, offset_slots),
            period=self.period,
            name=name or self.name,
        )


class TraceGenerator:
    """Synthesizes Sun-Fire-v880-like utilization traces.

    Parameters
    ----------
    duration:
        Trace length in seconds (default: the paper's 2 hours).
    period:
        Sampling period in seconds.
    n_cpus:
        CPUs in the modeled machine (affects burst granularity: jobs grab
        whole CPUs, so bursts quantize at 100/n_cpus percent).
    base_load, envelope_amplitude:
        Mean utilization percent and the slow-envelope swing around it.
    ar_coefficient, noise_scale:
        AR(1) fluctuation parameters.
    burst_rate:
        Per-slot probability that a batch job arrives.
    seed:
        Reproducibility seed.
    """

    def __init__(
        self,
        duration: float = 2 * 3600.0,
        period: float = 10.0,
        n_cpus: int = 8,
        base_load: float = 35.0,
        envelope_amplitude: float = 15.0,
        ar_coefficient: float = 0.85,
        noise_scale: float = 4.0,
        burst_rate: float = 0.02,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        check_positive("duration", duration)
        check_positive("period", period)
        check_positive("n_cpus", n_cpus)
        check_probability("burst_rate", burst_rate)
        if not 0 <= ar_coefficient < 1:
            raise ValueError(f"ar_coefficient must be in [0, 1), got {ar_coefficient}")
        self.duration = float(duration)
        self.period = float(period)
        self.n_cpus = int(n_cpus)
        self.base_load = float(base_load)
        self.envelope_amplitude = float(envelope_amplitude)
        self.ar_coefficient = float(ar_coefficient)
        self.noise_scale = float(noise_scale)
        self.burst_rate = float(burst_rate)
        self._rng = ensure_rng(seed)

    @property
    def n_slots(self) -> int:
        """Samples per generated trace."""
        return int(np.ceil(self.duration / self.period))

    def generate(self, name: str = "cpu-usage") -> CpuTrace:
        """Generate one machine trace."""
        rng = self._rng
        n = self.n_slots
        t = np.arange(n)

        # Slow load envelope: one gentle cycle over the trace (work ebbing
        # and flowing over the 2-hour window).
        phase = rng.uniform(0, 2 * np.pi)
        envelope = self.base_load + self.envelope_amplitude * np.sin(
            2 * np.pi * t / n + phase
        )

        # AR(1) fluctuation around the envelope.
        noise = np.empty(n)
        noise[0] = rng.normal(0, self.noise_scale)
        shocks = rng.normal(0, self.noise_scale, size=n)
        for i in range(1, n):
            noise[i] = self.ar_coefficient * noise[i - 1] + shocks[i]

        # Batch-job bursts: a job occupies 1..n_cpus CPUs for a geometric
        # number of slots, adding whole-CPU quanta of load.
        burst = np.zeros(n)
        cpu_quantum = 100.0 / self.n_cpus
        slot = 0
        while slot < n:
            if rng.random() < self.burst_rate:
                cpus = int(rng.integers(1, self.n_cpus + 1))
                length = int(rng.geometric(0.2))
                burst[slot : slot + length] += cpus * cpu_quantum * 0.5
            slot += 1

        values = np.clip(envelope + noise + burst, 0.0, 100.0)
        return CpuTrace(values=values, period=self.period, name=name)

    def generate_fleet(
        self,
        n_nodes: int,
        identical: bool = True,
        base: CpuTrace | None = None,
    ) -> list[CpuTrace]:
        """Traces for ``n_nodes`` machines.

        ``identical=True`` replays one trace on every node — exactly the
        paper's setup ("each node has the same CPU usage as in the trace").
        ``identical=False`` gives each node a time-shifted, noise-perturbed
        variant, a more realistic fleet.
        """
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        base_trace = base if base is not None else self.generate()
        if identical:
            return [base_trace] * n_nodes
        traces: list[CpuTrace] = []
        for index in range(n_nodes):
            offset = int(self._rng.integers(0, base_trace.n_slots))
            shifted = base_trace.shifted(offset)
            jitter = self._rng.normal(0, self.noise_scale / 2, size=shifted.n_slots)
            traces.append(
                CpuTrace(
                    values=np.clip(shifted.values + jitter, 0.0, 100.0),
                    period=base_trace.period,
                    name=f"{base_trace.name}[{index}]",
                )
            )
        return traces

"""Producer layer of P-GMA (paper Sec. 2.1).

"In GMA, a producer is a process that sends events to a directory service
or consumers. A producer may also accept search queries from its local
users or applications." A :class:`Producer` owns the sensors of one node's
resource, registers the resource's attributes into the MAAN index, and
serves the node-local value reads the DAT layer aggregates.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import MonitoringError
from repro.gma.events import MonitoringEvent
from repro.gma.sensors import Sensor
from repro.maan.attrs import Resource
from repro.maan.network import MaanNetwork

__all__ = ["Producer"]


class Producer:
    """The monitoring producer running on one overlay node.

    Parameters
    ----------
    node:
        The Chord identifier of the hosting node.
    resource_id:
        Identity of the local resource (host name / contact string).
    sensors:
        One sensor per monitored attribute.
    static_attributes:
        Attribute values that never change (cpu-speed, memory-size); these
        are indexed once at registration, while sensor-backed attributes
        are refreshed on every :meth:`refresh_index`.
    """

    def __init__(
        self,
        node: int,
        resource_id: str,
        sensors: Mapping[str, Sensor] | None = None,
        static_attributes: Mapping[str, float] | None = None,
    ) -> None:
        self.node = node
        self.resource_id = resource_id
        self.sensors: dict[str, Sensor] = dict(sensors or {})
        self.static_attributes: dict[str, float] = dict(static_attributes or {})
        self._last_registered: Resource | None = None
        for attribute, sensor in self.sensors.items():
            if sensor.attribute != attribute:
                raise MonitoringError(
                    f"sensor for {attribute!r} reports attribute "
                    f"{sensor.attribute!r}"
                )

    def add_sensor(self, sensor: Sensor) -> None:
        """Attach one more sensor (keyed by its attribute)."""
        self.sensors[sensor.attribute] = sensor

    def read(self, attribute: str, t: float) -> float:
        """Current value of ``attribute`` (sensor or static)."""
        sensor = self.sensors.get(attribute)
        if sensor is not None:
            return sensor.read(t)
        try:
            return self.static_attributes[attribute]
        except KeyError:
            raise MonitoringError(
                f"producer {self.resource_id!r} has no attribute {attribute!r}"
            ) from None

    def attributes(self) -> list[str]:
        """All attributes this producer can report."""
        return sorted(set(self.sensors) | set(self.static_attributes))

    def snapshot(self, t: float) -> Resource:
        """The resource record describing this node at time ``t``."""
        values: dict[str, float] = dict(self.static_attributes)
        for attribute, sensor in self.sensors.items():
            values[attribute] = sensor.read(t)
        return Resource(resource_id=self.resource_id, attributes=values)

    def events(self, t: float) -> list[MonitoringEvent]:
        """Events for every dynamic (sensor-backed) attribute at ``t``."""
        return [sensor.event(t) for sensor in self.sensors.values()]

    def register(self, index: MaanNetwork, t: float = 0.0) -> int:
        """(Re-)register this resource into the MAAN index; returns hops."""
        record = self.snapshot(t)
        hops = index.register(record, origin=self.node)
        self._last_registered = record
        return hops

    def refresh_index(self, index: MaanNetwork, t: float) -> int:
        """Refresh dynamic attribute registrations at time ``t``.

        MAAN stores one record per attribute value; dynamic values move
        around the ring as they change, so the previously registered
        placements (remembered from the last register call) are dropped
        first.
        """
        if self._last_registered is not None:
            index.deregister(self._last_registered)
        return self.register(index, t)

"""P-GMA — the P2P Grid Monitoring Architecture (paper Sec. 2, Fig. 1).

Layers, bottom to top:

* **sensors** (:mod:`repro.gma.sensors`) — per-resource status readers
  (synthetic equivalents of /proc scrapers), including trace-driven CPU
  sensors fed by :mod:`repro.gma.traces`.
* **producers** (:mod:`repro.gma.producer`) — per-node processes exposing
  sensor readings, registering resource attributes into the MAAN index.
* **indexing** — :mod:`repro.maan`.
* **aggregation** — :mod:`repro.core` (DAT trees).
* **consumers** (:mod:`repro.gma.consumer`) — search + global monitoring
  APIs for applications (scheduling, diagnostics, capacity planning).

:class:`~repro.gma.monitor.GridMonitor` is the facade wiring the stack
together over one overlay.
"""

from repro.gma.events import MonitoringEvent
from repro.gma.sensors import (
    CallbackSensor,
    ConstantSensor,
    RandomWalkSensor,
    Sensor,
    TraceSensor,
)
from repro.gma.traces import CpuTrace, TraceGenerator
from repro.gma.producer import Producer
from repro.gma.consumer import Consumer
from repro.gma.monitor import GridMonitor, MonitorConfig
from repro.gma.live import LiveGridMonitor
from repro.gma.scheduler import MonitoringScheduler, WatchSpec

__all__ = [
    "MonitoringEvent",
    "Sensor",
    "ConstantSensor",
    "CallbackSensor",
    "RandomWalkSensor",
    "TraceSensor",
    "CpuTrace",
    "TraceGenerator",
    "Producer",
    "Consumer",
    "GridMonitor",
    "MonitorConfig",
    "LiveGridMonitor",
    "MonitoringScheduler",
    "WatchSpec",
]

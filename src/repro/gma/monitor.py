"""The GridMonitor facade — a full P-GMA deployment in one object.

Wires together an overlay (identifier assignment + converged ring), the
MAAN index, per-node producers, and DAT aggregation; exposes the consumer
API. This is the object the examples and the accuracy experiment (Fig. 9)
drive.

This facade evaluates against the **static converged model** — no messages
are exchanged, so the :mod:`repro.net` session layer is not involved. Its
live counterpart :class:`~repro.gma.live.LiveGridMonitor` runs the same
stack over real RPCs and exposes the net layer's knobs (``retry_policy``,
``push_batch_window``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro import telemetry
from repro.chord.hashing import sha1_id
from repro.chord.idgen import make_assigner
from repro.chord.idspace import IdSpace
from repro.chord.ring import StaticRing
from repro.core.aggregates import get_aggregate
from repro.core.builder import DatScheme, DatTreeBuilder
from repro.core.tree import DatTree
from repro.errors import MonitoringError
from repro.gma.consumer import Consumer
from repro.gma.producer import Producer
from repro.maan.attrs import AttributeSchema
from repro.maan.network import MaanNetwork

__all__ = ["MonitorConfig", "AggregateOutcome", "GridMonitor"]


@dataclass(frozen=True)
class MonitorConfig:
    """Deployment parameters for a GridMonitor.

    Parameters
    ----------
    n_nodes:
        Overlay size.
    bits:
        Identifier width.
    id_strategy:
        ``"random"`` / ``"uniform"`` / ``"probing"`` (Sec. 3.5).
    dat_scheme:
        ``"basic"`` or ``"balanced"`` tree construction.
    seed:
        Reproducibility seed for identifier assignment.
    """

    n_nodes: int = 64
    bits: int = 32
    id_strategy: str = "probing"
    dat_scheme: str = "balanced"
    seed: int | None = None


@dataclass
class AggregateOutcome:
    """Result of one global aggregation round."""

    attribute: str
    value: Any
    tree: DatTree
    #: sends + receives per node for this round.
    message_loads: dict[int, int] = field(default_factory=dict)

    @property
    def root(self) -> int:
        """The root node that produced the global value."""
        return self.tree.root

    @property
    def total_messages(self) -> int:
        """Tree-edge messages for the round (``n - 1``)."""
        return self.tree.n_nodes - 1


class GridMonitor:
    """A complete P-GMA stack over one simulated overlay.

    Parameters
    ----------
    config:
        Deployment parameters.
    schemas:
        Declared resource attributes for the MAAN index.
    """

    def __init__(
        self,
        config: MonitorConfig,
        schemas: Mapping[str, AttributeSchema],
        rng: int | np.random.Generator | None = None,
    ) -> None:
        self.config = config
        self.space = IdSpace(config.bits)
        assigner = make_assigner(config.id_strategy)
        seed = rng if rng is not None else config.seed
        self.ring: StaticRing = assigner.build_ring(self.space, config.n_nodes, rng=seed)
        self.index = MaanNetwork(self.ring, schemas)
        self.dat_builder = DatTreeBuilder(self.ring, scheme=DatScheme(config.dat_scheme))
        self.producers: dict[int, Producer] = {}

    # ------------------------------------------------------------------ #
    # Producers
    # ------------------------------------------------------------------ #

    def attach_producer(self, producer: Producer) -> None:
        """Bind a producer to its overlay node."""
        if producer.node not in self.ring:
            raise MonitoringError(f"node {producer.node} is not in the overlay")
        self.producers[producer.node] = producer

    def require_full_coverage(self) -> None:
        """Raise unless every overlay node has a producer (Fig. 9 setup)."""
        missing = [node for node in self.ring if node not in self.producers]
        if missing:
            raise MonitoringError(
                f"{len(missing)} overlay nodes lack producers, e.g. {missing[:5]}"
            )

    def register_all(self, t: float = 0.0) -> int:
        """Register every producer's resource in MAAN; returns total hops."""
        return sum(
            producer.register(self.index, t) for producer in self.producers.values()
        )

    def refresh_all(self, t: float) -> int:
        """Refresh all dynamic registrations at time ``t``; returns hops."""
        return sum(
            producer.refresh_index(self.index, t)
            for producer in self.producers.values()
        )

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #

    def rendezvous_key(self, attribute: str) -> int:
        """The DAT rendezvous key for an attribute: SHA-1 of its name
        (paper Sec. 2.3)."""
        return sha1_id(attribute, self.space)

    def tree_for(self, attribute: str) -> DatTree:
        """The DAT tree that aggregates ``attribute``."""
        return self.dat_builder.build(self.rendezvous_key(attribute))

    def aggregate(
        self, attribute: str, aggregate: str = "avg", t: float = 0.0, **agg_kwargs: Any
    ) -> AggregateOutcome:
        """One synchronous aggregation round over the attribute's DAT.

        Every producer's reading at time ``t`` is lifted, merged bottom-up
        along the tree, and finalized at the root — the exact dataflow of
        the protocol service, evaluated synchronously so experiments get
        deterministic per-round numbers.
        """
        self.require_full_coverage()
        agg = get_aggregate(aggregate, **agg_kwargs)
        with telemetry.span(
            "gma.aggregate", attribute=attribute, aggregate=agg.name, t=t
        ) as sp:
            tree = self.tree_for(attribute)

            # Bottom-up merge in decreasing-depth order.
            depths = tree.depths()
            states: dict[int, Any] = {
                node: agg.lift(self.producers[node].read(attribute, t))
                for node in tree.nodes()
            }
            for node in sorted(tree.parent, key=lambda v: depths[v], reverse=True):
                parent = tree.parent[node]
                states[parent] = agg.merge(states[parent], states[node])
            value = agg.finalize(states[tree.root])
            outcome = AggregateOutcome(
                attribute=attribute,
                value=value,
                tree=tree,
                message_loads=tree.message_loads(),
            )
            if sp is not telemetry.NULL_SPAN:
                sp.set(
                    key=tree.key,
                    root=tree.root,
                    n_nodes=tree.n_nodes,
                    height=tree.height,
                )
                telemetry.count("gma_aggregations_total", attribute=attribute)
            return outcome

    def actual_aggregate(
        self, attribute: str, aggregate: str = "avg", t: float = 0.0, **agg_kwargs: Any
    ) -> Any:
        """Ground truth: the aggregate computed directly over all readings."""
        self.require_full_coverage()
        agg = get_aggregate(aggregate, **agg_kwargs)
        return agg.aggregate(
            self.producers[node].read(attribute, t) for node in self.ring
        )

    # ------------------------------------------------------------------ #
    # Consumers
    # ------------------------------------------------------------------ #

    def consumer(self, node: int | None = None) -> Consumer:
        """An application endpoint at ``node`` (default: first ring node)."""
        attach_at = node if node is not None else self.ring.nodes[0]
        if attach_at not in self.ring:
            raise MonitoringError(f"node {attach_at} is not in the overlay")
        return Consumer(self, attach_at)

"""LiveGridMonitor — the full P-GMA stack on the live protocol.

:class:`~repro.gma.monitor.GridMonitor` evaluates against the static
converged model (deterministic, fast — right for the figure experiments).
This facade runs the identical stack **end-to-end over real messages** on
the discrete-event simulator: protocol Chord nodes, routed MAAN
registration and queries, broadcast-gather on-demand aggregation, and
continuous monitoring — the configuration the paper's prototype calls the
"simulator-based setup" (Sec. 5.1).
"""

from __future__ import annotations

import os
from typing import Any, Callable, Mapping

import numpy as np

from repro import telemetry
from repro.chord.broadcast import BroadcastService
from repro.chord.hashing import sha1_id
from repro.chord.idgen import make_assigner
from repro.chord.idspace import IdSpace
from repro.chord.network import ChordNetwork
from repro.chord.node import ChordConfig
from repro.core.gathercast import GatherCollector
from repro.core.service import DatNodeService
from repro.errors import MonitoringError
from repro.gma.monitor import MonitorConfig
from repro.gma.producer import Producer
from repro.maan.attrs import AttributeSchema, Resource
from repro.maan.query import QueryResult, RangeQuery
from repro.maan.service import MaanNodeService
from repro.net import RetryPolicy
from repro.sim.latency import ConstantLatency
from repro.sim.simnet import SimTransport

__all__ = ["LiveGridMonitor"]


class LiveGridMonitor:
    """A protocol-backed P-GMA deployment on the DES.

    Parameters
    ----------
    config:
        Same knobs as the static :class:`GridMonitor`.
    schemas:
        Declared MAAN attributes.
    latency:
        One-way message delay (default 2 ms LAN-ish).
    telemetry_jsonl, telemetry_prom:
        Optional live-telemetry output paths (see
        :class:`~repro.telemetry.stream.LiveExport`). When either is set
        and no global runtime is installed, the monitor enables telemetry
        itself and disables it again in :meth:`close`.
    retry_policy:
        Optional :class:`~repro.net.RetryPolicy` for the MAAN walk and the
        DAT on-demand paths (default: the services' historical unbounded
        wait). Makes the whole deployment loss-robust in one knob.
    push_batch_window:
        Flush window handed to every DAT service's push
        :class:`~repro.net.Batcher` (default ``0.0`` — no batching).
    """

    def __init__(
        self,
        config: MonitorConfig,
        schemas: Mapping[str, AttributeSchema],
        latency: float = 0.002,
        rng: int | np.random.Generator | None = None,
        telemetry_jsonl: str | os.PathLike | None = None,
        telemetry_prom: str | os.PathLike | None = None,
        retry_policy: RetryPolicy | None = None,
        push_batch_window: float = 0.0,
    ) -> None:
        self.config = config
        self.schemas = dict(schemas)
        self.space = IdSpace(config.bits)
        # Wire the live export before the transport exists so the transport
        # registers hotspots / binds the sim clock against the runtime.
        self.live_export: telemetry.LiveExport | None = None
        self._owns_telemetry = False
        if telemetry_jsonl is not None or telemetry_prom is not None:
            tel = telemetry.active()
            if tel is None:
                tel = telemetry.configure(enabled=True)
                self._owns_telemetry = True
            assert tel is not None
            self.live_export = telemetry.LiveExport(
                tel, jsonl_path=telemetry_jsonl, prom_path=telemetry_prom
            )
        self.transport = SimTransport(latency=ConstantLatency(latency))
        self.chord_config = ChordConfig(
            stabilize_interval=0.25, fix_fingers_interval=0.05
        )
        self.network = ChordNetwork(self.space, self.transport, self.chord_config)

        seed = rng if rng is not None else config.seed
        idents = make_assigner(config.id_strategy).build_ring(
            self.space, config.n_nodes, rng=seed
        )
        for ident in idents:
            self.network.add_node(ident)
            self.run(0.5)
        self.network.settle_until_converged()
        for node in self.network.nodes.values():
            node.fix_all_fingers()
        self.run(5.0)

        self.producers: dict[int, Producer] = {}
        self.maan: dict[int, MaanNodeService] = {}
        self.dat: dict[int, DatNodeService] = {}
        self.broadcasts: dict[int, BroadcastService] = {}
        self.collectors: dict[int, GatherCollector] = {}
        for ident, node in self.network.nodes.items():
            self.maan[ident] = MaanNodeService(
                node, self.schemas, retry_policy=retry_policy
            )
            dat = DatNodeService(
                node,
                finger_provider=node.finger_table,
                value_provider=lambda ident=ident: self._read_local(ident),
                scheme=config.dat_scheme,
                d0_provider=self._mean_gap,
                retry_policy=retry_policy,
                push_batch_window=push_batch_window,
            )
            self.dat[ident] = dat
            broadcast = BroadcastService(node, finger_provider=node.finger_table)
            self.broadcasts[ident] = broadcast
            self.collectors[ident] = GatherCollector(dat, broadcast)

        self._clock = 0.0  # monitoring time fed to sensors

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #

    def run(self, duration: float) -> None:
        """Advance virtual time."""
        self.transport.run(until=self.transport.now() + duration)

    def close(self) -> dict[str, int]:
        """Tear down services and finalize the telemetry export (idempotent).

        Detaches every collector / DAT / MAAN service from its host so a
        fresh monitor can be built on the same process without leaked
        upcalls or timers, then closes the live export. Returns the
        exporter's line counts (empty when no export was configured).
        Disables the global runtime only if this monitor enabled it.
        """
        for collector in self.collectors.values():
            collector.close()
        self.collectors.clear()
        # Broadcast services were missing from this chain: their `bcast`
        # upcall registrations outlived the monitor.
        for broadcast in self.broadcasts.values():
            broadcast.close()
        self.broadcasts.clear()
        for service in self.dat.values():
            service.close()
        self.dat.clear()
        for maan in self.maan.values():
            maan.close()
        self.maan.clear()
        stats: dict[str, int] = {}
        if self.live_export is not None:
            stats = self.live_export.close()
            self.live_export = None
        if self._owns_telemetry:
            telemetry.disable()
            self._owns_telemetry = False
        return stats

    def __enter__(self) -> "LiveGridMonitor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def set_monitor_time(self, t: float) -> None:
        """Set the timestamp producers read their sensors at."""
        self._clock = t

    def _mean_gap(self) -> float:
        return self.space.size / max(len(self.network.nodes), 1)

    def _read_local(self, ident: int) -> float:
        producer = self.producers.get(ident)
        if producer is None:
            return 0.0
        return producer.read(self._default_attribute(), self._clock)

    def _default_attribute(self) -> str:
        return self._monitored_attribute

    _monitored_attribute: str = "cpu-usage"

    # ------------------------------------------------------------------ #
    # Producers / registration
    # ------------------------------------------------------------------ #

    def attach_producer(self, producer: Producer) -> None:
        """Bind a producer to its live node."""
        if producer.node not in self.network.nodes:
            raise MonitoringError(f"node {producer.node} is not in the overlay")
        self.producers[producer.node] = producer

    def register_all(self, t: float = 0.0, settle: float = 10.0) -> int:
        """Route every producer's registration; returns stored record count."""
        stored = {"count": 0}
        for ident, producer in self.producers.items():
            resource = producer.snapshot(t)
            self.maan[ident].register(
                resource, on_done=lambda n: stored.__setitem__("count", stored["count"] + n)
            )
        self.run(settle)
        return stored["count"]

    # ------------------------------------------------------------------ #
    # Discovery (routed queries)
    # ------------------------------------------------------------------ #

    def search(
        self,
        attribute: str,
        low: float,
        high: float,
        origin: int | None = None,
        settle: float = 10.0,
    ) -> QueryResult:
        """Routed range query; blocks virtual time until resolved."""
        source = origin if origin is not None else next(iter(self.maan))
        results: list[QueryResult] = []
        with telemetry.span(
            "gma.live.search", node=source, attribute=attribute
        ) as sp:
            self.maan[source].range_query(
                RangeQuery(attribute=attribute, low=low, high=high), results.append
            )
            self.run(settle)
            if not results:
                raise MonitoringError("query did not resolve in time")
            if sp is not telemetry.NULL_SPAN:
                sp.set(
                    hops=results[0].lookup_hops,
                    n_resources=len(results[0].resources),
                )
            return results[0]

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #

    def rendezvous_key(self, attribute: str) -> int:
        """SHA-1 rendezvous key of an attribute (Sec. 2.3)."""
        return sha1_id(attribute, self.space)

    def aggregate(
        self,
        attribute: str,
        aggregate: str = "avg",
        t: float = 0.0,
        waves: int | None = None,
        wave_interval: float = 0.1,
    ) -> Any:
        """One membership-free on-demand round over the live overlay."""
        self._monitored_attribute = attribute
        self.set_monitor_time(t)
        key = self.rendezvous_key(attribute)
        root = self.network.ideal_ring().successor(key)
        from repro.util.bits import ceil_log2

        n_waves = (
            waves
            if waves is not None
            else ceil_log2(max(len(self.network.nodes), 2)) + 4
        )
        results: list[Any] = []
        with telemetry.span(
            "gma.live.aggregate",
            attribute=attribute,
            key=key,
            root=root,
            waves=n_waves,
        ):
            self.collectors[root].collect(
                key,
                aggregate,
                results.append,
                waves=n_waves,
                wave_interval=wave_interval,
            )
            self.run((n_waves + 4) * wave_interval)
        if not results:
            raise MonitoringError("aggregation round did not complete in time")
        return results[0]

    def start_monitoring(
        self, attribute: str, aggregate: str = "sum", interval: float = 0.5
    ) -> int:
        """Start continuous aggregation of ``attribute`` on every node."""
        self._monitored_attribute = attribute
        key = self.rendezvous_key(attribute)
        root = self.network.ideal_ring().successor(key)
        for service in self.dat.values():
            service.start_continuous(key, root, aggregate, interval)
        return root

    def read_monitoring(self, attribute: str) -> Any:
        """Latest continuous estimate at the attribute's current root."""
        key = self.rendezvous_key(attribute)
        root = self.network.ideal_ring().successor(key)
        service = self.dat.get(root)
        if service is None or key not in service._continuous:
            return None
        return service.root_estimate(key)

    def actual_aggregate(self, attribute: str, aggregate: str, t: float) -> Any:
        """Ground truth straight from the producers."""
        from repro.core.aggregates import get_aggregate

        agg = get_aggregate(aggregate)
        return agg.aggregate(
            producer.read(attribute, t) for producer in self.producers.values()
        )

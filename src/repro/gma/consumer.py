"""Consumer layer of P-GMA (paper Sec. 2.1).

"Applications in the consumer layer can directly search resources or
monitor their status by issuing multi-attribute range queries to any nodes
in the P2P indexing network. To monitor the global resource status, P-GMA
builds an aggregation layer on top of the indexing layer." A
:class:`Consumer` is the application-facing handle bound to one overlay
node, delegating searches to MAAN and global aggregates to the DAT layer
through the :class:`~repro.gma.monitor.GridMonitor` facade.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.maan.query import MultiAttributeQuery, QueryResult, RangeQuery

if TYPE_CHECKING:  # circular at runtime: monitor builds consumers
    from repro.gma.monitor import GridMonitor

__all__ = ["Consumer"]


class Consumer:
    """An application's monitoring endpoint at one overlay node."""

    def __init__(self, monitor: "GridMonitor", node: int) -> None:
        self.monitor = monitor
        self.node = node

    # ------------------------------------------------------------------ #
    # Discovery
    # ------------------------------------------------------------------ #

    def search(self, attribute: str, low: float, high: float) -> QueryResult:
        """Single-attribute range search issued from this node."""
        query = RangeQuery(attribute=attribute, low=low, high=high)
        return self.monitor.index.range_query(query, origin=self.node)

    def search_all(self, **ranges: tuple[float, float]) -> QueryResult:
        """Multi-attribute conjunctive search.

        Usage: ``consumer.search_all(cpu_usage=(0, 50), memory_size=(2, 64))``
        — attribute names use ``_`` for ``-``.
        """
        sub_queries = [
            RangeQuery(attribute=name.replace("_", "-"), low=low, high=high)
            for name, (low, high) in ranges.items()
        ]
        return self.monitor.index.multi_attribute_query(
            MultiAttributeQuery.of(*sub_queries), origin=self.node
        )

    # ------------------------------------------------------------------ #
    # Global monitoring
    # ------------------------------------------------------------------ #

    def global_aggregate(self, attribute: str, aggregate: str = "avg", t: float = 0.0) -> Any:
        """The global aggregate of ``attribute`` at time ``t`` via the DAT."""
        return self.monitor.aggregate(attribute, aggregate=aggregate, t=t).value

    def monitor_series(
        self, attribute: str, aggregate: str, times: list[float]
    ) -> list[Any]:
        """Aggregate ``attribute`` at each time — a monitoring time series."""
        return [
            self.monitor.aggregate(attribute, aggregate=aggregate, t=t).value
            for t in times
        ]

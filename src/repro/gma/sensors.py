"""Sensor layer of P-GMA (paper Sec. 2.1).

"A sensor monitors the status of one or more resources and generates events
to producers. The sensor could be simply some scripts that collect the
system status from the /proc file system." — here sensors are objects with
a ``read(t)`` method; trace-driven sensors replay recorded series and
synthetic sensors model live metrics.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

from repro.gma.events import MonitoringEvent
from repro.gma.traces import CpuTrace
from repro.util.rng import ensure_rng

__all__ = [
    "Sensor",
    "ConstantSensor",
    "CallbackSensor",
    "RandomWalkSensor",
    "TraceSensor",
]


class Sensor(ABC):
    """One monitored attribute of one resource."""

    def __init__(self, resource_id: str, attribute: str) -> None:
        self.resource_id = resource_id
        self.attribute = attribute

    @abstractmethod
    def read(self, t: float) -> float:
        """The attribute's value at time ``t``."""

    def event(self, t: float) -> MonitoringEvent:
        """Wrap the current reading as a monitoring event."""
        return MonitoringEvent(
            timestamp=t,
            resource_id=self.resource_id,
            attribute=self.attribute,
            value=self.read(t),
        )


class ConstantSensor(Sensor):
    """A static attribute (cpu-speed, memory-size, ...)."""

    def __init__(self, resource_id: str, attribute: str, value: float) -> None:
        super().__init__(resource_id, attribute)
        self.value = float(value)

    def read(self, t: float) -> float:
        return self.value


class CallbackSensor(Sensor):
    """Adapter around an arbitrary ``t -> value`` function."""

    def __init__(
        self, resource_id: str, attribute: str, fn: Callable[[float], float]
    ) -> None:
        super().__init__(resource_id, attribute)
        self.fn = fn

    def read(self, t: float) -> float:
        return float(self.fn(t))


class RandomWalkSensor(Sensor):
    """A bounded random walk — a generic 'live metric' for tests.

    Reading at time ``t`` advances the walk once per distinct call with
    increasing ``t`` (re-reads of the same time return the cached value, so
    synchronized collection rounds observe one consistent snapshot).
    """

    def __init__(
        self,
        resource_id: str,
        attribute: str,
        low: float = 0.0,
        high: float = 100.0,
        step_scale: float = 5.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(resource_id, attribute)
        if high <= low:
            raise ValueError(f"high must exceed low, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)
        self.step_scale = float(step_scale)
        self._rng = ensure_rng(seed)
        self._value = float(self._rng.uniform(low, high))
        self._last_t: float | None = None

    def read(self, t: float) -> float:
        if self._last_t is None or t > self._last_t:
            self._last_t = t
            step = float(self._rng.normal(0, self.step_scale))
            self._value = float(np.clip(self._value + step, self.low, self.high))
        return self._value


class TraceSensor(Sensor):
    """Replays a recorded :class:`~repro.gma.traces.CpuTrace` (Sec. 5.4)."""

    def __init__(self, resource_id: str, attribute: str, trace: CpuTrace) -> None:
        super().__init__(resource_id, attribute)
        self.trace = trace

    def read(self, t: float) -> float:
        return self.trace.at_time(t)

    def read_slot(self, slot: int) -> float:
        """Slot-indexed read (the accuracy experiment iterates slots)."""
        return self.trace.at_slot(slot)

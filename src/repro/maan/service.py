"""Protocol-level MAAN: routed registration and queries (paper Sec. 2.2).

:class:`MaanNetwork` resolves everything against a converged ring snapshot;
this module is the live counterpart, running over a transport exactly as
the paper describes:

* **registration** — the resource record is routed to ``successor(H(v))``
  for each attribute value (one Chord lookup + one store message each);
* **range query** — routed to ``successor(H(l))``, then *walked* along
  successor pointers: each node appends its local matches and forwards,
  until the node owning ``H(u)`` replies directly to the originator.

Message kinds: ``maan_store``, ``maan_scan``, ``maan_result``.

Hosts follow the same shape as the DAT service: anything with ``ident``,
``space``, ``transport``, ``upcalls`` plus an injected ``lookup_fn`` (live
Chord lookup) and ``successor_provider`` / ``predecessor_provider``.
:class:`~repro.chord.node.ChordProtocolNode` hosts wire these automatically.
"""

from __future__ import annotations

from typing import Any, Callable

from repro import telemetry
from repro.chord.host import ChordHost
from repro.errors import QueryError, SchemaError
from repro.maan.attrs import AttributeKind, AttributeSchema, Resource
from repro.maan.query import MultiAttributeQuery, QueryResult, RangeQuery
from repro.maan.store import ResourceStore
from repro.net import UNBOUNDED_POLICY, RetryPolicy, RpcClient
from repro.sim.messages import Message

__all__ = ["MaanNodeService"]


class MaanNodeService:
    """The MAAN layer of one live node.

    Parameters
    ----------
    host:
        Object with ``ident``, ``space``, ``transport``, ``upcalls``.
    schemas:
        Declared attributes (shared, identical on every node).
    lookup_fn:
        ``(key, on_result(node, path), on_failure(key)) -> None`` — a live
        Chord lookup. For :class:`ChordProtocolNode` hosts this defaults to
        the node's own ``lookup``.
    successor_provider / predecessor_provider:
        Live neighbor pointers, used by the walk's forward/terminate logic.
        Default to the host's attributes when present.
    retry_policy:
        :class:`~repro.net.RetryPolicy` for the originator's wait on the
        walk result. Defaults to :data:`~repro.net.UNBOUNDED_POLICY` — the
        historical behavior: the walk has no deadline, a lost hop simply
        leaves the query unresolved. Pass a bounded policy to fail over to
        an empty result (and retransmit the scan) under loss.
    """

    def __init__(
        self,
        host: ChordHost,
        schemas: dict[str, AttributeSchema],
        lookup_fn: Callable[..., None] | None = None,
        successor_provider: Callable[[], int] | None = None,
        predecessor_provider: Callable[[], int | None] | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self.host = host
        self.schemas = dict(schemas)
        self.store = ResourceStore()
        self._hashers = {
            name: schema.hasher(host.space) for name, schema in schemas.items()
        }
        if lookup_fn is None and hasattr(host, "lookup"):
            lookup_fn = host.lookup
        if lookup_fn is None:
            raise QueryError("MaanNodeService requires a lookup_fn")
        self.lookup_fn = lookup_fn
        if successor_provider is None and hasattr(host, "successor"):
            successor_provider = lambda: host.successor  # noqa: E731
        if successor_provider is None:
            raise QueryError("MaanNodeService requires a successor_provider")
        self.successor_provider = successor_provider
        if predecessor_provider is None and hasattr(host, "predecessor"):
            predecessor_provider = lambda: host.predecessor  # noqa: E731
        self.predecessor_provider = predecessor_provider
        self.retry_policy = retry_policy if retry_policy is not None else UNBOUNDED_POLICY
        # Reuse the host's session layer when it has one (ChordProtocolNode
        # hosts do) so the whole node shares a single jitter stream.
        host_net = getattr(host, "net", None)
        self.net: RpcClient = (
            host_net
            if isinstance(host_net, RpcClient)
            else RpcClient(host.transport, host.ident)
        )
        host.upcalls["maan_store"] = self._on_store
        host.upcalls["maan_scan"] = self._on_scan

    def close(self) -> None:
        """Detach from the host: drop this service's upcall registrations."""
        for kind in ("maan_store", "maan_scan"):
            self.host.upcalls.pop(kind, None)

    @property
    def ident(self) -> int:
        return self.host.ident

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def register(
        self,
        resource: Resource,
        on_done: Callable[[int], None] | None = None,
    ) -> None:
        """Route one store message per declared attribute value.

        ``on_done(stored_count)`` fires after every attribute's owner
        acknowledged placement (lookups that fail are skipped — soft-state
        refresh retries them on the next cycle).
        """
        entries: list[tuple[str, Any, int]] = []
        for attribute, value in resource.attributes.items():
            schema = self.schemas.get(attribute)
            if schema is None:
                continue
            normalized = schema.validate_value(value)
            entries.append((attribute, normalized, self._hashers[attribute](normalized)))
        if not entries:
            raise SchemaError(
                f"resource {resource.resource_id!r} has no declared attributes"
            )
        remaining = {"count": len(entries), "stored": 0}

        def one_done(stored: bool) -> None:
            remaining["count"] -= 1
            if stored:
                remaining["stored"] += 1
            if remaining["count"] == 0 and on_done is not None:
                on_done(remaining["stored"])

        for attribute, normalized, key in entries:
            self._place(attribute, normalized, resource, key, one_done)

    def _place(
        self,
        attribute: str,
        value: Any,
        resource: Resource,
        key: int,
        done: Callable[[bool], None],
    ) -> None:
        def on_owner(owner: int, _path: list[int]) -> None:
            if owner == self.ident:
                self.store.put(attribute, value, resource)
                done(True)
                return
            store_span = (
                telemetry.span(
                    "maan.store_route", node=self.ident, attribute=attribute, owner=owner
                )
                if telemetry.tracing_enabled()
                else telemetry.NULL_SPAN
            )
            with store_span:
                # on_owner runs from the lookup's continuation — no span is
                # open here, so the store leg roots its own trace.
                self.net.send(
                    Message(
                        kind="maan_store",
                        source=self.ident,
                        destination=owner,
                        payload={
                            "attribute": attribute,
                            "value": value,
                            "resource_id": resource.resource_id,
                            "attributes": dict(resource.attributes),
                        },
                    )
                )
            done(True)

        def on_failure(_key: int) -> None:
            done(False)

        self.lookup_fn(key, on_owner, on_failure)

    def _on_store(self, message: Message) -> None:
        payload = message.payload
        with telemetry.remote_span(
            message, "maan.store_recv", node=self.ident, attribute=payload["attribute"]
        ):
            resource = Resource(
                resource_id=payload["resource_id"], attributes=payload["attributes"]
            )
            self.store.put(payload["attribute"], payload["value"], resource)
        return None

    # ------------------------------------------------------------------ #
    # Range queries (routed + successor walk)
    # ------------------------------------------------------------------ #

    def range_query(
        self, query: RangeQuery, on_result: Callable[[QueryResult], None]
    ) -> None:
        """Resolve ``query`` over the live overlay; asynchronous result."""
        schema = self.schemas.get(query.attribute)
        if schema is None:
            raise SchemaError(f"undeclared attribute {query.attribute!r}")
        if schema.kind is not AttributeKind.NUMERIC:
            raise QueryError(f"attribute {query.attribute!r} does not support ranges")
        hasher = self._hashers[query.attribute]
        low_key = hasher(schema.validate_value(query.low))
        high_key = hasher(schema.validate_value(query.high))
        span = telemetry.span(
            "maan.live_query", node=self.ident, attribute=query.attribute
        )
        lookup_hops = 0

        def deliver(reply: Message) -> None:
            payload = reply.payload
            seen: set[str] = set()
            resources = []
            for entry in payload["matches"]:
                if entry["resource_id"] not in seen:
                    seen.add(entry["resource_id"])
                    resources.append(
                        Resource(
                            resource_id=entry["resource_id"],
                            attributes=entry["attributes"],
                        )
                    )
            result = QueryResult(
                resources=resources,
                lookup_hops=lookup_hops,
                nodes_visited=max(payload["visited"] - 1, 0),
            )
            span.finish(
                hops=result.lookup_hops,
                nodes_visited=result.nodes_visited,
                n_resources=len(result.resources),
            )
            telemetry.count("maan_queries_total", kind="live")
            telemetry.observe("maan_query_hops", result.lookup_hops)
            on_result(result)

        def on_timeout(_scan: Message) -> None:
            span.finish(failed=True)
            on_result(QueryResult())  # empty: walk never resolved

        def on_start(start: int, path: list[int]) -> None:
            nonlocal lookup_hops
            lookup_hops = len(path) - 1 if path else 0
            scan = Message(
                kind="maan_scan",
                source=self.ident,
                destination=start,
                payload={
                    "originator": self.ident,
                    "attribute": query.attribute,
                    "low": query.low,
                    "high": query.high,
                    "low_key": low_key,
                    "high_key": high_key,
                    "start": start,
                    "visited": 0,
                    "matches": [],
                },
            )
            # The walk's terminal node answers the original scan directly
            # (``reply_to=token``); the session layer owns the wait.
            scan.payload["token"] = scan.msg_id
            # This continuation runs after the query span left the nesting
            # stack, so thread its context explicitly: the walk's hops
            # chain under the live query.
            span.propagate(scan)
            self.net.call(
                scan,
                deliver,
                on_timeout=on_timeout,
                policy=self.retry_policy,
                send=self._on_scan if start == self.ident else None,
            )

        def on_failure(_key: int) -> None:
            span.finish(failed=True)
            on_result(QueryResult())  # empty: lookup failed

        self.lookup_fn(low_key, on_start, on_failure)
        # The query span finishes in a continuation; leave the nesting
        # stack so unrelated spans started meanwhile don't nest under it.
        span.detach()

    def _on_scan(self, message: Message) -> None:
        """One hop of the successor walk.

        The hash interval ``[low_key, high_key]`` never wraps (the hash is
        monotone and ``low <= high``), so plain numeric membership decides
        whether to keep walking:

        * my identifier outside the interval → I am ``successor(high_key)``
          (or the wrapped owner of the interval's tail): scan and reply;
        * the next successor is the walk's start → full lap: reply;
        * the next successor is inside the interval → keep walking;
        * otherwise the next successor owns the tail: one final hop.
        """
        payload = message.payload
        matches = list(payload["matches"])
        for resource in self.store.scan(
            payload["attribute"], payload["low"], payload["high"]
        ):
            matches.append(
                {
                    "resource_id": resource.resource_id,
                    "attributes": dict(resource.attributes),
                }
            )
        visited = payload["visited"] + 1
        low_key, high_key = payload["low_key"], payload["high_key"]
        in_interval = low_key <= self.ident <= high_key
        successor = self.successor_provider()
        with telemetry.remote_span(
            message, "maan.scan_hop", node=self.ident, visited=visited
        ) as hop:
            if (
                not in_interval
                or successor == self.ident
                or successor == payload["start"]
            ):
                # Terminal hop: answer the originator's scan request
                # directly (the reply joins this hop's trace via the send
                # path's automatic threading).
                self.net.send(
                    Message(
                        kind="maan_result",
                        source=self.ident,
                        destination=payload["originator"],
                        payload={"matches": matches, "visited": visited},
                        reply_to=payload["token"],
                    )
                )
                return None
            forward = Message(
                kind="maan_scan",
                source=self.ident,
                destination=successor,
                payload={**payload, "matches": matches, "visited": visited},
            )
            # The copied payload still carries the previous hop's context;
            # replace it so the walk chains hop by hop.
            hop.propagate(forward)
            self.net.send(forward)
        return None

    def multi_attribute_query(
        self,
        query: MultiAttributeQuery,
        on_result: Callable[[QueryResult], None],
    ) -> None:
        """Resolve a conjunction with single-attribute domination (Sec. 2.2).

        The sub-query with minimum selectivity is walked over the live
        overlay; the full conjunction is applied as a filter when the walk
        result arrives — one iteration, ``O(log n + n*s_min)`` hops.
        """
        def selectivity(sub: RangeQuery) -> float:
            schema = self.schemas.get(sub.attribute)
            if schema is None:
                raise SchemaError(f"undeclared attribute {sub.attribute!r}")
            return sub.selectivity(schema.low, schema.high)  # type: ignore[arg-type]

        dominant = min(query.sub_queries, key=selectivity)

        def filter_and_deliver(result: QueryResult) -> None:
            result.resources = [
                resource for resource in result.resources if query.matches(resource)
            ]
            on_result(result)

        self.range_query(dominant, filter_and_deliver)


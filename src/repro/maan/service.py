"""Protocol-level MAAN: routed registration and queries (paper Sec. 2.2).

:class:`MaanNetwork` resolves everything against a converged ring snapshot;
this module is the live counterpart, running over a transport exactly as
the paper describes:

* **registration** — the resource record is routed to ``successor(H(v))``
  for each attribute value (one Chord lookup + one store message each);
* **range query** — routed to ``successor(H(l))``, then *walked* along
  successor pointers: each node appends its local matches and forwards,
  until the node owning ``H(u)`` replies directly to the originator.

Message kinds: ``maan_store``, ``maan_scan``, ``maan_result``.

Hosts follow the same shape as the DAT service: anything with ``ident``,
``space``, ``transport``, ``upcalls`` plus an injected ``lookup_fn`` (live
Chord lookup) and ``successor_provider`` / ``predecessor_provider``.
:class:`~repro.chord.node.ChordProtocolNode` hosts wire these automatically.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro import telemetry
from repro.errors import QueryError, SchemaError
from repro.maan.attrs import AttributeKind, AttributeSchema, Resource
from repro.maan.query import MultiAttributeQuery, QueryResult, RangeQuery
from repro.maan.store import ResourceStore
from repro.sim.messages import Message
from repro.telemetry.spans import SpanBase

__all__ = ["MaanNodeService"]

_QUERY_IDS = itertools.count(1)


@dataclass
class _PendingQuery:
    """Originator-side state for one in-flight range query."""

    query: RangeQuery
    on_result: Callable[[QueryResult], None]
    lookup_hops: int = 0
    span: SpanBase | None = None


class MaanNodeService:
    """The MAAN layer of one live node.

    Parameters
    ----------
    host:
        Object with ``ident``, ``space``, ``transport``, ``upcalls``.
    schemas:
        Declared attributes (shared, identical on every node).
    lookup_fn:
        ``(key, on_result(node, path), on_failure(key)) -> None`` — a live
        Chord lookup. For :class:`ChordProtocolNode` hosts this defaults to
        the node's own ``lookup``.
    successor_provider / predecessor_provider:
        Live neighbor pointers, used by the walk's forward/terminate logic.
        Default to the host's attributes when present.
    """

    def __init__(
        self,
        host,
        schemas: dict[str, AttributeSchema],
        lookup_fn: Callable[..., None] | None = None,
        successor_provider: Callable[[], int] | None = None,
        predecessor_provider: Callable[[], int | None] | None = None,
    ) -> None:
        self.host = host
        self.schemas = dict(schemas)
        self.store = ResourceStore()
        self._hashers = {
            name: schema.hasher(host.space) for name, schema in schemas.items()
        }
        if lookup_fn is None and hasattr(host, "lookup"):
            lookup_fn = host.lookup
        if lookup_fn is None:
            raise QueryError("MaanNodeService requires a lookup_fn")
        self.lookup_fn = lookup_fn
        if successor_provider is None and hasattr(host, "successor"):
            successor_provider = lambda: host.successor  # noqa: E731
        if successor_provider is None:
            raise QueryError("MaanNodeService requires a successor_provider")
        self.successor_provider = successor_provider
        if predecessor_provider is None and hasattr(host, "predecessor"):
            predecessor_provider = lambda: host.predecessor  # noqa: E731
        self.predecessor_provider = predecessor_provider
        self._pending: dict[int, _PendingQuery] = {}
        host.upcalls["maan_store"] = self._on_store
        host.upcalls["maan_scan"] = self._on_scan
        host.upcalls["maan_result"] = self._on_result

    @property
    def ident(self) -> int:
        return self.host.ident

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def register(
        self,
        resource: Resource,
        on_done: Callable[[int], None] | None = None,
    ) -> None:
        """Route one store message per declared attribute value.

        ``on_done(stored_count)`` fires after every attribute's owner
        acknowledged placement (lookups that fail are skipped — soft-state
        refresh retries them on the next cycle).
        """
        entries: list[tuple[str, Any, int]] = []
        for attribute, value in resource.attributes.items():
            schema = self.schemas.get(attribute)
            if schema is None:
                continue
            normalized = schema.validate_value(value)
            entries.append((attribute, normalized, self._hashers[attribute](normalized)))
        if not entries:
            raise SchemaError(
                f"resource {resource.resource_id!r} has no declared attributes"
            )
        remaining = {"count": len(entries), "stored": 0}

        def one_done(stored: bool) -> None:
            remaining["count"] -= 1
            if stored:
                remaining["stored"] += 1
            if remaining["count"] == 0 and on_done is not None:
                on_done(remaining["stored"])

        for attribute, normalized, key in entries:
            self._place(attribute, normalized, resource, key, one_done)

    def _place(
        self,
        attribute: str,
        value: Any,
        resource: Resource,
        key: int,
        done: Callable[[bool], None],
    ) -> None:
        def on_owner(owner: int, _path: list[int]) -> None:
            if owner == self.ident:
                self.store.put(attribute, value, resource)
                done(True)
                return
            self.host.transport.send(
                Message(
                    kind="maan_store",
                    source=self.ident,
                    destination=owner,
                    payload={
                        "attribute": attribute,
                        "value": value,
                        "resource_id": resource.resource_id,
                        "attributes": dict(resource.attributes),
                    },
                )
            )
            done(True)

        def on_failure(_key: int) -> None:
            done(False)

        self.lookup_fn(key, on_owner, on_failure)

    def _on_store(self, message: Message) -> None:
        payload = message.payload
        resource = Resource(
            resource_id=payload["resource_id"], attributes=payload["attributes"]
        )
        self.store.put(payload["attribute"], payload["value"], resource)
        return None

    # ------------------------------------------------------------------ #
    # Range queries (routed + successor walk)
    # ------------------------------------------------------------------ #

    def range_query(
        self, query: RangeQuery, on_result: Callable[[QueryResult], None]
    ) -> None:
        """Resolve ``query`` over the live overlay; asynchronous result."""
        schema = self.schemas.get(query.attribute)
        if schema is None:
            raise SchemaError(f"undeclared attribute {query.attribute!r}")
        if schema.kind is not AttributeKind.NUMERIC:
            raise QueryError(f"attribute {query.attribute!r} does not support ranges")
        hasher = self._hashers[query.attribute]
        low_key = hasher(schema.validate_value(query.low))
        high_key = hasher(schema.validate_value(query.high))
        query_id = next(_QUERY_IDS)
        self._pending[query_id] = _PendingQuery(
            query=query,
            on_result=on_result,
            span=telemetry.span(
                "maan.live_query",
                node=self.ident,
                attribute=query.attribute,
                query_id=query_id,
            ),
        )

        def on_start(start: int, path: list[int]) -> None:
            pending = self._pending.get(query_id)
            if pending is not None:
                pending.lookup_hops = len(path) - 1 if path else 0
            scan = Message(
                kind="maan_scan",
                source=self.ident,
                destination=start,
                payload={
                    "query_id": query_id,
                    "originator": self.ident,
                    "attribute": query.attribute,
                    "low": query.low,
                    "high": query.high,
                    "low_key": low_key,
                    "high_key": high_key,
                    "start": start,
                    "visited": 0,
                    "matches": [],
                },
            )
            if start == self.ident:
                self._on_scan(scan)
            else:
                self.host.transport.send(scan)

        def on_failure(_key: int) -> None:
            pending = self._pending.pop(query_id, None)
            if pending is not None:
                if pending.span is not None:
                    pending.span.finish(failed=True)
                pending.on_result(QueryResult())  # empty: lookup failed

        self.lookup_fn(low_key, on_start, on_failure)

    def _on_scan(self, message: Message) -> None:
        """One hop of the successor walk.

        The hash interval ``[low_key, high_key]`` never wraps (the hash is
        monotone and ``low <= high``), so plain numeric membership decides
        whether to keep walking:

        * my identifier outside the interval → I am ``successor(high_key)``
          (or the wrapped owner of the interval's tail): scan and reply;
        * the next successor is the walk's start → full lap: reply;
        * the next successor is inside the interval → keep walking;
        * otherwise the next successor owns the tail: one final hop.
        """
        payload = message.payload
        matches = list(payload["matches"])
        for resource in self.store.scan(
            payload["attribute"], payload["low"], payload["high"]
        ):
            matches.append(
                {
                    "resource_id": resource.resource_id,
                    "attributes": dict(resource.attributes),
                }
            )
        visited = payload["visited"] + 1
        low_key, high_key = payload["low_key"], payload["high_key"]
        in_interval = low_key <= self.ident <= high_key
        successor = self.successor_provider()
        if (
            not in_interval
            or successor == self.ident
            or successor == payload["start"]
        ):
            self.host.transport.send(
                Message(
                    kind="maan_result",
                    source=self.ident,
                    destination=payload["originator"],
                    payload={
                        "query_id": payload["query_id"],
                        "matches": matches,
                        "visited": visited,
                    },
                )
            )
            return None
        self.host.transport.send(
            Message(
                kind="maan_scan",
                source=self.ident,
                destination=successor,
                payload={**payload, "matches": matches, "visited": visited},
            )
        )
        return None

    def multi_attribute_query(
        self,
        query: MultiAttributeQuery,
        on_result: Callable[[QueryResult], None],
    ) -> None:
        """Resolve a conjunction with single-attribute domination (Sec. 2.2).

        The sub-query with minimum selectivity is walked over the live
        overlay; the full conjunction is applied as a filter when the walk
        result arrives — one iteration, ``O(log n + n*s_min)`` hops.
        """
        def selectivity(sub: RangeQuery) -> float:
            schema = self.schemas.get(sub.attribute)
            if schema is None:
                raise SchemaError(f"undeclared attribute {sub.attribute!r}")
            return sub.selectivity(schema.low, schema.high)  # type: ignore[arg-type]

        dominant = min(query.sub_queries, key=selectivity)

        def filter_and_deliver(result: QueryResult) -> None:
            result.resources = [
                resource for resource in result.resources if query.matches(resource)
            ]
            on_result(result)

        self.range_query(dominant, filter_and_deliver)

    def _on_result(self, message: Message) -> None:
        payload = message.payload
        pending = self._pending.pop(payload["query_id"], None)
        if pending is None:
            return None  # duplicate / late
        seen: set[str] = set()
        resources = []
        for entry in payload["matches"]:
            if entry["resource_id"] not in seen:
                seen.add(entry["resource_id"])
                resources.append(
                    Resource(
                        resource_id=entry["resource_id"],
                        attributes=entry["attributes"],
                    )
                )
        result = QueryResult(
            resources=resources,
            lookup_hops=pending.lookup_hops,
            nodes_visited=max(payload["visited"] - 1, 0),
        )
        if pending.span is not None:
            pending.span.finish(
                hops=result.lookup_hops,
                nodes_visited=result.nodes_visited,
                n_resources=len(result.resources),
            )
            telemetry.count("maan_queries_total", kind="live")
            telemetry.observe("maan_query_hops", result.lookup_hops)
        pending.on_result(result)
        return None

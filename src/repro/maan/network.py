"""The MAAN overlay: registration and query resolution (paper Sec. 2.2).

:class:`MaanNetwork` runs over a converged :class:`~repro.chord.ring.StaticRing`
and per-node :class:`~repro.maan.store.ResourceStore` instances. Routing
costs (finger-route hops, arc-walk lengths) are measured with the real
routing machinery so the Sec. 2.2 complexity claims can be validated
empirically (``benchmarks/bench_maan_routing.py``).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro import telemetry
from repro.chord.fingers import FingerTable
from repro.chord.ring import StaticRing
from repro.chord.routing import finger_route
from repro.errors import QueryError, SchemaError
from repro.maan.attrs import AttributeKind, AttributeSchema, Resource
from repro.maan.query import MultiAttributeQuery, QueryResult, RangeQuery
from repro.maan.store import ResourceStore

__all__ = ["MaanNetwork"]


class MaanNetwork:
    """A MAAN deployment over a converged Chord ring.

    Parameters
    ----------
    ring:
        The overlay membership.
    schemas:
        Declared attributes (name -> schema). Registration and queries may
        only reference declared attributes.
    origin:
        Default node originating registrations/queries (defaults to the
        lowest identifier; any node works — costs differ by O(1)).
    """

    def __init__(
        self,
        ring: StaticRing,
        schemas: Mapping[str, AttributeSchema],
        origin: int | None = None,
    ) -> None:
        if len(ring) == 0:
            raise QueryError("MAAN requires a non-empty ring")
        self.ring = ring
        self.schemas = dict(schemas)
        self.origin = origin if origin is not None else ring.nodes[0]
        self.stores: dict[int, ResourceStore] = {node: ResourceStore() for node in ring}
        self._hashers = {
            name: schema.hasher(ring.space) for name, schema in self.schemas.items()
        }
        self._tables: dict[int, FingerTable] | None = None

    @property
    def tables(self) -> dict[int, FingerTable]:
        """Finger tables shared by all routed operations (built lazily)."""
        if self._tables is None:
            self._tables = self.ring.all_finger_tables()
        return self._tables

    def _schema(self, attribute: str) -> AttributeSchema:
        try:
            return self.schemas[attribute]
        except KeyError:
            raise SchemaError(f"undeclared attribute {attribute!r}") from None

    def node_for_value(self, attribute: str, value: Any) -> int:
        """The node responsible for ``(attribute, value)``."""
        schema = self._schema(attribute)
        normalized = schema.validate_value(value)
        return self.ring.successor(self._hashers[attribute](normalized))

    # ------------------------------------------------------------------ #
    # Registration (O(m log n) hops)
    # ------------------------------------------------------------------ #

    def register(self, resource: Resource, origin: int | None = None) -> int:
        """Register ``resource`` under every declared attribute it carries.

        Returns the total routing hops spent — ``O(m log n)`` for ``m``
        attributes (Sec. 2.2).
        """
        source = origin if origin is not None else self.origin
        total_hops = 0
        registered = 0
        for attribute, value in resource.attributes.items():
            if attribute not in self.schemas:
                continue  # undeclared attributes are not indexed
            schema = self.schemas[attribute]
            normalized = schema.validate_value(value)
            target_key = self._hashers[attribute](normalized)
            route = finger_route(self.ring, source, target_key, tables=self.tables)
            total_hops += route.hops
            self.stores[route.destination].put(attribute, normalized, resource)
            registered += 1
        if registered == 0:
            raise SchemaError(
                f"resource {resource.resource_id!r} has no declared attributes"
            )
        return total_hops

    def deregister(self, resource: Resource) -> None:
        """Remove every record of ``resource`` (same placement math)."""
        for attribute, value in resource.attributes.items():
            if attribute not in self.schemas:
                continue
            schema = self.schemas[attribute]
            normalized = schema.validate_value(value)
            target_key = self._hashers[attribute](normalized)
            node = self.ring.successor(target_key)
            self.stores[node].remove(attribute, resource.resource_id)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def arc_nodes(self, attribute: str, low: float, high: float) -> list[int]:
        """Nodes owning the identifier arc ``[H(low), H(high)]`` for one attribute.

        These are exactly the nodes that can store matching values — the
        ``k`` of the O(log n + k) bound.
        """
        schema = self._schema(attribute)
        if schema.kind is not AttributeKind.NUMERIC:
            raise QueryError(f"attribute {attribute!r} does not support ranges")
        hasher = self._hashers[attribute]
        low_key = hasher(schema.validate_value(low))
        high_key = hasher(schema.validate_value(high))
        # The locality-preserving hash is monotone, so [low_key, high_key]
        # never wraps the circle. The responsible set is every node whose
        # identifier lies in that interval, plus successor(high_key) (which
        # owns the interval's top); computing it from identifiers directly
        # avoids the non-termination a successor walk hits when both
        # endpoints resolve to the same node on (near-)full-domain ranges.
        from bisect import bisect_left, bisect_right

        sorted_nodes = self.ring.nodes
        lo = bisect_left(sorted_nodes, low_key)
        hi = bisect_right(sorted_nodes, high_key)
        nodes = list(sorted_nodes[lo:hi])
        end = self.ring.successor(high_key)
        if not nodes or nodes[-1] != end:
            nodes.append(end)
        return nodes

    def range_query(self, query: RangeQuery, origin: int | None = None) -> QueryResult:
        """Resolve a single-attribute range query (Sec. 2.2).

        Routes to ``successor(H(low))`` (``O(log n)`` hops), then walks
        successors until ``successor(H(high))``, collecting local matches.
        """
        source = origin if origin is not None else self.origin
        schema = self._schema(query.attribute)
        if schema.kind is not AttributeKind.NUMERIC:
            raise QueryError(f"attribute {query.attribute!r} does not support ranges")
        hasher = self._hashers[query.attribute]
        start_key = hasher(schema.validate_value(query.low))
        with telemetry.span(
            "maan.range_query", node=source, attribute=query.attribute
        ) as sp:
            route = finger_route(self.ring, source, start_key, tables=self.tables)
            result = QueryResult(lookup_hops=route.hops)
            seen: set[str] = set()
            for node in self.arc_nodes(query.attribute, query.low, query.high):
                result.nodes_visited += 1
                for resource in self.stores[node].scan(
                    query.attribute, query.low, query.high
                ):
                    if resource.resource_id not in seen:
                        seen.add(resource.resource_id)
                        result.resources.append(resource)
            # The walk's first node was reached by the lookup itself.
            result.nodes_visited = max(result.nodes_visited - 1, 0)
            if sp is not telemetry.NULL_SPAN:
                sp.set(
                    hops=result.lookup_hops,
                    nodes_visited=result.nodes_visited,
                    n_resources=len(result.resources),
                )
                telemetry.count("maan_queries_total", kind="range")
                telemetry.observe("maan_query_hops", result.lookup_hops)
            return result

    def estimate_selectivity(self, query: RangeQuery) -> float:
        """Domain-fraction selectivity of one sub-query (for dominance choice)."""
        schema = self._schema(query.attribute)
        return query.selectivity(schema.low, schema.high)  # type: ignore[arg-type]

    def multi_attribute_query(
        self, query: MultiAttributeQuery, origin: int | None = None
    ) -> QueryResult:
        """Resolve a conjunction with the single-attribute-dominated strategy.

        Chooses the sub-query with minimum selectivity, walks only its arc,
        and filters each candidate against the full conjunction locally —
        one iteration around the ring, ``O(log n + n * s_min)`` hops.
        """
        dominant = min(query.sub_queries, key=self.estimate_selectivity)
        source = origin if origin is not None else self.origin
        schema = self._schema(dominant.attribute)
        hasher = self._hashers[dominant.attribute]
        start_key = hasher(schema.validate_value(dominant.low))
        with telemetry.span(
            "maan.multi_query",
            node=source,
            attribute=dominant.attribute,
            n_sub_queries=len(query.sub_queries),
        ) as sp:
            route = finger_route(self.ring, source, start_key, tables=self.tables)
            result = QueryResult(lookup_hops=route.hops)
            seen: set[str] = set()
            for node in self.arc_nodes(
                dominant.attribute, dominant.low, dominant.high
            ):
                result.nodes_visited += 1
                for resource in self.stores[node].scan(
                    dominant.attribute, dominant.low, dominant.high
                ):
                    if resource.resource_id not in seen and query.matches(resource):
                        seen.add(resource.resource_id)
                        result.resources.append(resource)
            result.nodes_visited = max(result.nodes_visited - 1, 0)
            if sp is not telemetry.NULL_SPAN:
                sp.set(
                    hops=result.lookup_hops,
                    nodes_visited=result.nodes_visited,
                    n_resources=len(result.resources),
                )
                telemetry.count("maan_queries_total", kind="multi")
                telemetry.observe("maan_query_hops", result.lookup_hops)
            return result

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def total_records(self) -> int:
        """Records across all nodes (== registrations x attributes)."""
        return sum(store.count() for store in self.stores.values())

    def storage_loads(self) -> dict[int, int]:
        """Per-node record counts (storage balance under consistent hashing)."""
        return {node: store.count() for node, store in self.stores.items()}

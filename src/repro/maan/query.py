"""MAAN query model (paper Sec. 2.2).

* :class:`RangeQuery` — one attribute, ``[low, high]``; resolved by routing
  to ``successor(H(low))`` and walking successors until ``successor(H(high))``.
* :class:`MultiAttributeQuery` — a conjunction of range sub-queries;
  resolved with the *single-attribute dominated* strategy: iterate the ring
  arc of the most selective sub-query only, filtering candidates against the
  full conjunction locally at each node.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.maan.attrs import Resource

__all__ = ["RangeQuery", "MultiAttributeQuery", "QueryResult"]


@dataclass(frozen=True)
class RangeQuery:
    """Closed-interval query on one numeric attribute."""

    attribute: str
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise QueryError(
                f"range query on {self.attribute!r} has high < low "
                f"({self.high} < {self.low})"
            )

    def matches(self, resource: Resource) -> bool:
        """Local filter: does ``resource`` satisfy this sub-query?"""
        return resource.matches(self.attribute, self.low, self.high)

    def selectivity(self, domain_low: float, domain_high: float) -> float:
        """Fraction of the attribute domain this query covers."""
        width = domain_high - domain_low
        if width <= 0:
            raise QueryError(f"degenerate domain [{domain_low}, {domain_high}]")
        clipped_low = max(self.low, domain_low)
        clipped_high = min(self.high, domain_high)
        return max(clipped_high - clipped_low, 0.0) / width


@dataclass(frozen=True)
class MultiAttributeQuery:
    """Conjunction of range sub-queries, one per attribute."""

    sub_queries: tuple[RangeQuery, ...]

    def __post_init__(self) -> None:
        if not self.sub_queries:
            raise QueryError("multi-attribute query needs at least one sub-query")
        names = [q.attribute for q in self.sub_queries]
        if len(set(names)) != len(names):
            raise QueryError(f"duplicate attribute in query: {names}")

    @classmethod
    def of(cls, *sub_queries: RangeQuery) -> "MultiAttributeQuery":
        """Convenience constructor from positional sub-queries."""
        return cls(sub_queries=tuple(sub_queries))

    def matches(self, resource: Resource) -> bool:
        """Local filter: the full conjunction."""
        return all(q.matches(resource) for q in self.sub_queries)

    def attribute_names(self) -> list[str]:
        """Attributes referenced by the conjunction."""
        return [q.attribute for q in self.sub_queries]


@dataclass
class QueryResult:
    """Resolved query: matching resources plus routing-cost accounting."""

    resources: list[Resource] = field(default_factory=list)
    #: Hops spent reaching the arc start (the O(log n) term).
    lookup_hops: int = 0
    #: Nodes visited walking the arc (the O(k) / O(n*s_min) term).
    nodes_visited: int = 0

    @property
    def total_hops(self) -> int:
        """Total routing messages for this query."""
        return self.lookup_hops + self.nodes_visited

    def resource_ids(self) -> set[str]:
        """Distinct matching resource identifiers."""
        return {r.resource_id for r in self.resources}

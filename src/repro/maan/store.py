"""Per-node resource storage for MAAN.

Each Chord node stores the resource records whose attribute-value hashes it
is the successor of. Records are indexed per attribute so range scans touch
only the relevant attribute's entries.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterable

from repro.maan.attrs import Resource

__all__ = ["ResourceStore"]


class ResourceStore:
    """Attribute-indexed resource records held by one node."""

    def __init__(self) -> None:
        # attribute -> resource_id -> (value, resource)
        self._by_attribute: dict[str, dict[str, tuple[Any, Resource]]] = defaultdict(dict)

    def put(self, attribute: str, value: Any, resource: Resource) -> None:
        """Store (or refresh) one resource record under ``attribute``.

        Re-registration replaces the previous value — resources update
        their dynamic attributes (cpu-usage) continuously.
        """
        self._by_attribute[attribute][resource.resource_id] = (value, resource)

    def remove(self, attribute: str, resource_id: str) -> bool:
        """Drop a record; returns True if something was removed."""
        bucket = self._by_attribute.get(attribute)
        if bucket is None:
            return False
        return bucket.pop(resource_id, None) is not None

    def remove_resource(self, resource_id: str) -> int:
        """Drop every record of ``resource_id``; returns the count removed."""
        removed = 0
        for bucket in self._by_attribute.values():
            if bucket.pop(resource_id, None) is not None:
                removed += 1
        return removed

    def scan(self, attribute: str, low: Any, high: Any) -> list[Resource]:
        """All locally stored resources with ``attribute`` value in [low, high]."""
        bucket = self._by_attribute.get(attribute, {})
        return [
            resource
            for value, resource in bucket.values()
            if low <= value <= high
        ]

    def all_for_attribute(self, attribute: str) -> list[Resource]:
        """Every resource stored under ``attribute`` on this node."""
        return [resource for _value, resource in self._by_attribute.get(attribute, {}).values()]

    def values_for_attribute(self, attribute: str) -> list[Any]:
        """The raw attribute values stored under ``attribute``."""
        return [value for value, _resource in self._by_attribute.get(attribute, {}).values()]

    def count(self, attribute: str | None = None) -> int:
        """Record count for one attribute, or total across attributes."""
        if attribute is not None:
            return len(self._by_attribute.get(attribute, {}))
        return sum(len(bucket) for bucket in self._by_attribute.values())

    def attributes(self) -> Iterable[str]:
        """Attribute names with at least one stored record."""
        return [name for name, bucket in self._by_attribute.items() if bucket]

    def clear(self) -> None:
        """Drop everything (node departure hand-off in tests)."""
        self._by_attribute.clear()

"""Soft-state registration with TTL expiry.

Grid registries are soft-state: producers re-register periodically and
stale entries age out instead of requiring explicit deregistration (the
paper's Sec. 1 critique of large-TTL caching in MDS motivates keeping TTLs
short and refresh cheap — which MAAN's O(m log n) registration enables).
:class:`SoftStateStore` wraps the per-node store with expiry timestamps;
:class:`SoftStateRegistry` drives refresh/sweep cycles across a MAAN
deployment and reports staleness metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.maan.attrs import Resource
from repro.maan.network import MaanNetwork
from repro.maan.store import ResourceStore
from repro.util.validation import check_positive

__all__ = ["SoftStateStore", "SoftStateRegistry", "StalenessReport"]


class SoftStateStore:
    """Expiry bookkeeping for one node's records.

    The underlying :class:`~repro.maan.store.ResourceStore` keeps the
    records; this wrapper tracks a deadline per (attribute, resource) and
    sweeps expired entries.
    """

    def __init__(self, store: ResourceStore) -> None:
        self.store = store
        self._deadlines: dict[tuple[str, str], float] = {}

    def put(
        self, attribute: str, value: Any, resource: Resource, now: float, ttl: float
    ) -> None:
        """Store a record that expires at ``now + ttl``."""
        check_positive("ttl", ttl)
        self.store.put(attribute, value, resource)
        self._deadlines[(attribute, resource.resource_id)] = now + ttl

    def touch(self, attribute: str, resource_id: str, now: float, ttl: float) -> bool:
        """Extend a live record's deadline; False if it isn't present."""
        key = (attribute, resource_id)
        if key not in self._deadlines:
            return False
        self._deadlines[key] = now + ttl
        return True

    def sweep(self, now: float) -> int:
        """Drop every expired record; returns the number removed."""
        expired = [key for key, deadline in self._deadlines.items() if deadline <= now]
        for attribute, resource_id in expired:
            self.store.remove(attribute, resource_id)
            del self._deadlines[(attribute, resource_id)]
        return len(expired)

    def live_count(self, now: float) -> int:
        """Records that would survive a sweep at ``now``."""
        return sum(1 for deadline in self._deadlines.values() if deadline > now)

    def expired_count(self, now: float) -> int:
        """Records that a sweep at ``now`` would remove."""
        return sum(1 for deadline in self._deadlines.values() if deadline <= now)


@dataclass(frozen=True)
class StalenessReport:
    """Registry-wide freshness snapshot."""

    time: float
    live_records: int
    expired_records: int
    swept_records: int

    @property
    def total_records(self) -> int:
        return self.live_records + self.expired_records


class SoftStateRegistry:
    """TTL-driven registration layer over a MAAN deployment.

    Parameters
    ----------
    network:
        The MAAN overlay whose stores we manage.
    default_ttl:
        Lifetime of a registration without refresh.
    """

    def __init__(self, network: MaanNetwork, default_ttl: float = 60.0) -> None:
        check_positive("default_ttl", default_ttl)
        self.network = network
        self.default_ttl = float(default_ttl)
        self.soft_stores = {
            node: SoftStateStore(store) for node, store in network.stores.items()
        }

    def register(
        self, resource: Resource, now: float, ttl: float | None = None
    ) -> int:
        """Register with expiry; returns routing hops (as plain register)."""
        lifetime = self.default_ttl if ttl is None else ttl
        hops = 0
        registered = 0
        for attribute, value in resource.attributes.items():
            if attribute not in self.network.schemas:
                continue
            schema = self.network.schemas[attribute]
            normalized = schema.validate_value(value)
            owner = self.network.node_for_value(attribute, normalized)
            from repro.chord.routing import finger_route

            hops += finger_route(
                self.network.ring,
                self.network.origin,
                self.network._hashers[attribute](normalized),
                tables=self.network.tables,
            ).hops
            self.soft_stores[owner].put(attribute, normalized, resource, now, lifetime)
            registered += 1
        if registered == 0:
            from repro.errors import SchemaError

            raise SchemaError(
                f"resource {resource.resource_id!r} has no declared attributes"
            )
        return hops

    def refresh(self, resource: Resource, now: float, ttl: float | None = None) -> int:
        """Re-register (records may have moved if dynamic values changed)."""
        return self.register(resource, now, ttl)

    def sweep(self, now: float) -> int:
        """Expire stale records network-wide; returns records removed."""
        return sum(store.sweep(now) for store in self.soft_stores.values())

    def report(self, now: float, swept: int = 0) -> StalenessReport:
        """Freshness snapshot at ``now``."""
        return StalenessReport(
            time=now,
            live_records=sum(s.live_count(now) for s in self.soft_stores.values()),
            expired_records=sum(s.expired_count(now) for s in self.soft_stores.values()),
            swept_records=swept,
        )

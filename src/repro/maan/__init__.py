"""MAAN — Multi-Attribute Addressable Network (paper Sec. 2.2; Cai et al. 2004).

MAAN is the indexing layer of P-GMA: each Grid resource, described by
attribute–value pairs, is registered on the Chord successor of every
attribute value's locality-preserving hash. Range queries then resolve to a
contiguous arc of the ring:

* registration: ``O(m log n)`` routing hops for ``m`` attributes;
* single-attribute range query ``[l, u]``: ``O(log n + k)`` hops where
  ``k`` is the number of nodes between ``successor(H(l))`` and
  ``successor(H(u))``;
* multi-attribute query: single-attribute-dominated resolution using the
  sub-query with minimum selectivity, ``O(log n + n * s_min)`` hops.
"""

from repro.maan.attrs import AttributeSchema, AttributeKind, Resource
from repro.maan.store import ResourceStore
from repro.maan.network import MaanNetwork
from repro.maan.query import RangeQuery, MultiAttributeQuery, QueryResult
from repro.maan.softstate import SoftStateRegistry, SoftStateStore
from repro.maan.service import MaanNodeService

__all__ = [
    "SoftStateRegistry",
    "SoftStateStore",
    "MaanNodeService",
    "AttributeSchema",
    "AttributeKind",
    "Resource",
    "ResourceStore",
    "MaanNetwork",
    "RangeQuery",
    "MultiAttributeQuery",
    "QueryResult",
]

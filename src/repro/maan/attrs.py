"""Resource and attribute models for MAAN.

A Grid resource is "a list of attribute-value pairs, such as
(<cpu-speed, 2.8GHz>, <memory-size, 1GB>, <cpu-usage, 95%>)" (Sec. 2.2).
Numeric attributes get locality-preserving hashes over a declared domain;
string attributes use uniform (SHA-1) hashing and support exact-match
queries only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Mapping

from repro.chord.hashing import LocalityPreservingHash, sha1_id
from repro.chord.idspace import IdSpace
from repro.errors import SchemaError

__all__ = ["AttributeKind", "AttributeSchema", "Resource"]


class AttributeKind(str, Enum):
    """How an attribute's values map onto the identifier space."""

    NUMERIC = "numeric"
    STRING = "string"


@dataclass(frozen=True)
class AttributeSchema:
    """Declaration of one attribute: name, kind, and (numeric) domain.

    Parameters
    ----------
    name:
        Attribute name, e.g. ``"cpu-speed"``.
    kind:
        Numeric (range-queryable) or string (exact-match).
    low, high:
        Domain bounds, required for numeric attributes.
    """

    name: str
    kind: AttributeKind = AttributeKind.NUMERIC
    low: float | None = None
    high: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if self.kind is AttributeKind.NUMERIC:
            if self.low is None or self.high is None:
                raise SchemaError(
                    f"numeric attribute {self.name!r} requires low/high bounds"
                )
            if not self.high > self.low:
                raise SchemaError(
                    f"attribute {self.name!r} requires high > low, "
                    f"got [{self.low}, {self.high}]"
                )

    def hasher(self, space: IdSpace) -> Callable[[Any], int]:
        """The value-to-identifier hash for this attribute.

        Numeric attributes get the locality-preserving hash (so ranges are
        contiguous); strings get consistent hashing.
        """
        if self.kind is AttributeKind.NUMERIC:
            return LocalityPreservingHash(space=space, low=self.low, high=self.high)  # type: ignore[arg-type]
        return lambda value: sha1_id(f"{self.name}={value}", space)

    def validate_value(self, value: Any) -> Any:
        """Check (and normalize) one value against this schema."""
        if self.kind is AttributeKind.NUMERIC:
            try:
                return float(value)
            except (TypeError, ValueError):
                raise SchemaError(
                    f"attribute {self.name!r} expects a number, got {value!r}"
                ) from None
        if not isinstance(value, str):
            raise SchemaError(f"attribute {self.name!r} expects a string, got {value!r}")
        return value


@dataclass(frozen=True)
class Resource:
    """One registered Grid resource: a stable id plus attribute values.

    ``resource_id`` is typically the owning node's contact string; MAAN
    stores one replica of the resource record per attribute value.
    """

    resource_id: str
    attributes: Mapping[str, Any] = field(default_factory=dict)

    def value_of(self, attribute: str) -> Any:
        """The resource's value for ``attribute`` (KeyError if absent)."""
        return self.attributes[attribute]

    def matches(self, attribute: str, low: Any, high: Any) -> bool:
        """True if this resource's ``attribute`` value lies in ``[low, high]``."""
        value = self.attributes.get(attribute)
        if value is None:
            return False
        return low <= value <= high

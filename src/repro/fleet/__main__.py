"""Entry point: ``python -m repro.fleet`` runs the operator CLI."""

from repro.fleet.cli import main

if __name__ == "__main__":
    raise SystemExit(main())

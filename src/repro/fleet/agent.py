"""Fleet node agent: one real OS process hosting one protocol node.

``python -m repro.fleet.agent`` is the per-process entrypoint the
supervisor spawns. Each agent boots a genuine socket-backed stack — a
:class:`~repro.sim.udprpc.UdpRpcTransport` (real UDP datagrams on
127.0.0.1), a :class:`~repro.chord.node.ChordProtocolNode`, and a
:class:`~repro.core.service.DatNodeService` — then connects back to the
supervisor's TCP control port and speaks the :mod:`repro.fleet.wire`
protocol:

* it introduces itself with a :class:`~repro.fleet.wire.Hello` frame
  carrying its identifier and the UDP address its transport bound;
* it serves control requests (``join`` / ``leave`` / ``status`` /
  ``route`` / workload ops) on the control-reader thread;
* a background thread streams one ``telemetry`` event per sampling
  interval — the per-node JSONL feed the supervisor persists and the
  comparison report aggregates.

Threading model: the UDP receive thread dispatches protocol handlers, the
transport's timer threads run maintenance ticks, and the control-reader
thread applies supervision commands — the same looseness the transport's
timer callbacks already have (protocol state is only ever mutated by
short, idempotent steps; see ``docs/FLEET.md``).

``repro.fleet`` is a sanctioned wall-clock boundary (datlint DAT008): a
real deployment *is* wall-clocked, exactly like the one sanctioned
``time.monotonic()`` inside :mod:`repro.sim.udprpc`.
"""

from __future__ import annotations

import argparse
import logging
import os
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro import telemetry
from repro.chord.idspace import IdSpace
from repro.chord.node import ChordConfig, ChordProtocolNode
from repro.core.service import DatNodeService
from repro.errors import FleetError, FleetWireError
from repro.fleet.wire import Event, Frame, Hello, Reply, Request, decode_frame, encode_frame
from repro.gma.traces import CpuTrace, TraceGenerator
from repro.sim.udprpc import UdpRpcTransport

__all__ = ["AgentOptions", "FleetAgent", "main"]

logger = logging.getLogger("repro.fleet.agent")


@dataclass(frozen=True)
class AgentOptions:
    """Everything one agent process needs to boot, straight from argv."""

    ident: int
    bits: int
    supervisor_host: str
    supervisor_port: int
    scheme: str = "balanced"
    stabilize_interval: float = 0.1
    fix_fingers_interval: float = 0.05
    check_predecessor_interval: float = 0.25
    rpc_timeout: float = 0.5
    telemetry_interval: float = 0.5
    #: Initial fleet-size hint for the balanced scheme's mean-gap estimate;
    #: refreshed by every ``add_routes`` broadcast.
    n_hint: int = 1
    #: When set, the agent enables distributed tracing (site = its ident)
    #: and streams its span export to this JSONL path; the supervisor
    #: aligns the per-agent clocks via the ``Hello.clock`` handshake.
    span_jsonl: str | None = None

    def chord_config(self) -> ChordConfig:
        return ChordConfig(
            stabilize_interval=self.stabilize_interval,
            fix_fingers_interval=self.fix_fingers_interval,
            check_predecessor_interval=self.check_predecessor_interval,
            rpc_timeout=self.rpc_timeout,
        )


class FleetAgent:
    """The in-process controller for one fleet node.

    Wires the protocol stack to the control plane; :meth:`run` blocks until
    the supervisor tells the agent to leave/shut down or the control
    connection drops (a dead supervisor must not leave orphan processes).
    """

    def __init__(self, options: AgentOptions) -> None:
        self.options = options
        self.space = IdSpace(options.bits)
        # Tracing must be configured before the transport exists: the
        # transport binds the telemetry clock (monotonic offset from its
        # birth) at construction, and that clock reading is what the Hello
        # handshake reports for fleet-wide alignment.
        self._live_export: telemetry.LiveExport | None = None
        self._owns_telemetry = False
        if options.span_jsonl:
            tel = telemetry.configure(
                enabled=True,
                tracing=True,
                allow_wall_clock=True,
                site=str(options.ident),
            )
            assert tel is not None
            self._live_export = telemetry.LiveExport(
                tel, jsonl_path=options.span_jsonl
            )
            self._owns_telemetry = True
        self.transport = UdpRpcTransport()
        self.node = ChordProtocolNode(
            options.ident, self.space, self.transport, options.chord_config()
        )
        self._n_estimate = max(options.n_hint, 1)
        self.service = DatNodeService(
            self.node,
            finger_provider=self.node.finger_table,
            value_provider=self._read_value,
            scheme=options.scheme,
            d0_provider=self._mean_gap,
        )
        self._started = time.monotonic()
        self._value = 0.0
        self._trace: CpuTrace | None = None
        self._slot = 0
        self._stop = threading.Event()
        self._exit_code = 0
        self._sock: socket.socket | None = None
        self._send_lock = threading.Lock()
        self._telemetry_thread: threading.Thread | None = None
        self._ops: dict[str, Callable[[dict[str, Any]], dict[str, Any]]] = {
            "ping": self._op_ping,
            "create": self._op_create,
            "join": self._op_join,
            "add_routes": self._op_add_routes,
            "status": self._op_status,
            "route": self._op_route,
            "fix_fingers": self._op_fix_fingers,
            "set_value": self._op_set_value,
            "load_trace": self._op_load_trace,
            "set_slot": self._op_set_slot,
            "start_continuous": self._op_start_continuous,
            "stop_continuous": self._op_stop_continuous,
            "read_estimate": self._op_read_estimate,
            "leave": self._op_leave,
            "shutdown": self._op_shutdown,
        }

    # ------------------------------------------------------------------ #
    # Stack plumbing
    # ------------------------------------------------------------------ #

    def _read_value(self) -> float:
        trace = self._trace
        if trace is not None:
            return trace.at_slot(self._slot)
        return self._value

    def _mean_gap(self) -> float:
        return self.space.size / max(self._n_estimate, 1)

    # ------------------------------------------------------------------ #
    # Control-plane main loop
    # ------------------------------------------------------------------ #

    def run(self) -> int:
        """Connect to the supervisor and serve control requests until told
        to exit. Returns the process exit code."""
        sock = socket.create_connection(
            (self.options.supervisor_host, self.options.supervisor_port), timeout=30.0
        )
        sock.settimeout(None)
        self._sock = sock
        try:
            host, port = self.transport.address_of(self.options.ident)
            tel = telemetry.active()
            self._send(
                Hello(
                    ident=self.options.ident,
                    pid=os.getpid(),
                    udp_host=host,
                    udp_port=port,
                    clock=tel.now() if tel is not None else 0.0,
                )
            )
            self._telemetry_thread = threading.Thread(
                target=self._telemetry_loop, name="fleet-telemetry", daemon=True
            )
            self._telemetry_thread.start()
            self._serve(sock)
        finally:
            self._stop.set()
            self.close()
        return self._exit_code

    def _serve(self, sock: socket.socket) -> None:
        """Read control frames until EOF or a stop-triggering op."""
        stream = sock.makefile("rb")
        try:
            while not self._stop.is_set():
                line = stream.readline()
                if not line:
                    logger.info("control connection closed; exiting")
                    return
                try:
                    frame = decode_frame(line)
                except FleetWireError as exc:
                    logger.warning("dropping malformed control frame: %s", exc)
                    continue
                if isinstance(frame, Request):
                    self._send(self._execute(frame))
                else:
                    logger.warning("unexpected frame on agent control plane: %r", frame)
        finally:
            stream.close()

    def _execute(self, request: Request) -> Reply:
        handler = self._ops.get(request.op)
        if handler is None:
            return Reply(
                req_id=request.req_id, ok=False, error=f"unknown op {request.op!r}"
            )
        try:
            result = handler(request.args)
        except FleetError as exc:
            return Reply(req_id=request.req_id, ok=False, error=str(exc))
        except Exception as exc:  # datlint: disable=DAT007 - the control
            # plane is a fault barrier: any exception from an op handler
            # (bad args, protocol state, ...) must become an error Reply,
            # not kill the agent; the supervisor decides what to do.
            logger.exception("op %s failed", request.op)
            return Reply(
                req_id=request.req_id,
                ok=False,
                error=f"{type(exc).__name__}: {exc}",
            )
        return Reply(req_id=request.req_id, ok=True, result=result)

    def _send(self, frame: Frame) -> None:
        sock = self._sock
        if sock is None:
            return
        data = encode_frame(frame)
        with self._send_lock:
            try:
                sock.sendall(data)
            except OSError:
                # Supervisor went away mid-write: stop serving; run()'s
                # finally block tears the stack down.
                self._stop.set()

    def close(self) -> None:
        """Tear down the whole stack (service, maintenance, transport, control)."""
        self.service.close()
        self.node.stop_maintenance()
        self.transport.close()
        if self._live_export is not None:
            self._live_export.close()
            self._live_export = None
        if self._owns_telemetry:
            telemetry.disable()
            self._owns_telemetry = False
        sock = self._sock
        self._sock = None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    # Telemetry stream
    # ------------------------------------------------------------------ #

    def _telemetry_loop(self) -> None:
        # First sample immediately: every agent that said hello leaves at
        # least one telemetry record, however short its life.
        interval = max(self.options.telemetry_interval, 0.05)
        while True:
            self._send(Event(name="telemetry", data=self.snapshot()))
            if self._stop.wait(interval):
                return

    def snapshot(self) -> dict[str, Any]:
        """One status/telemetry record (also the ``status`` op's reply)."""
        load = self.transport.stats.load(self.options.ident)
        fingers_filled = sum(1 for entry in self.node.fingers if entry is not None)
        pushes: dict[str, int] = {}
        estimates: dict[str, float | None] = {}
        for key, state in list(self.service._continuous.items()):
            pushes[str(key)] = state.pushes_sent
            estimate = state.last_estimate
            estimates[str(key)] = float(estimate) if estimate is not None else None
        return {
            "t": round(time.monotonic() - self._started, 3),
            "ident": self.options.ident,
            "pid": os.getpid(),
            "successor": self.node.successor,
            "predecessor": self.node.predecessor,
            "fingers_filled": fingers_filled,
            "sent": load.sent,
            "received": load.received,
            "bytes_sent": load.bytes_sent,
            "bytes_received": load.bytes_received,
            "pending_calls": self.transport.pending_calls(),
            "pushes": pushes,
            "estimates": estimates,
            "slot": self._slot,
            "value": self._read_value(),
        }

    # ------------------------------------------------------------------ #
    # Control ops
    # ------------------------------------------------------------------ #

    def _op_ping(self, args: dict[str, Any]) -> dict[str, Any]:
        return {"pong": True, "ident": self.options.ident}

    def _op_create(self, args: dict[str, Any]) -> dict[str, Any]:
        self.node.create()
        return {"created": True}

    def _op_join(self, args: dict[str, Any]) -> dict[str, Any]:
        bootstrap = int(args["bootstrap"])
        timeout = float(args.get("timeout", 15.0))
        done = threading.Event()
        outcome = {"joined": False}

        def on_joined() -> None:
            outcome["joined"] = True
            done.set()

        def on_failure() -> None:
            done.set()

        self.node.join(bootstrap, on_joined=on_joined, on_failure=on_failure)
        if not done.wait(timeout):
            raise FleetError(f"join via {bootstrap} did not resolve within {timeout}s")
        if not outcome["joined"]:
            raise FleetError(f"join via {bootstrap} failed")
        if self.node.successor == self.options.ident:
            # The self-lookup resolved to our own identifier: the ring still
            # carried a stale entry for it (rejoin racing failure detection).
            # A lone ring next to a live bootstrap is never a successful
            # join — surface it so the supervisor retries.
            raise FleetError(
                f"join via {bootstrap} landed on a stale self-successor"
            )
        return {"joined": True, "successor": self.node.successor}

    def _op_add_routes(self, args: dict[str, Any]) -> dict[str, Any]:
        routes = args.get("routes", {})
        for ident_str, addr in routes.items():
            host, port = str(addr[0]), int(addr[1])
            self.transport.add_route(int(ident_str), host, port)
        n = args.get("n")
        if n is not None:
            self._n_estimate = max(int(n), 1)
        return {"routes": len(routes), "n": self._n_estimate}

    def _op_status(self, args: dict[str, Any]) -> dict[str, Any]:
        return self.snapshot()

    def _op_route(self, args: dict[str, Any]) -> dict[str, Any]:
        """Resolve ``successor(key)`` and return the forwarding path taken.

        The per-request route display of the deployment scenario set: the
        recursive lookup records every hop it traverses, and the terminal
        node reports the full path back to the origin.
        """
        key = int(args["key"])
        timeout = float(args.get("timeout", 10.0))
        done = threading.Event()
        outcome: dict[str, Any] = {}

        def on_result(result: int, path: list[int]) -> None:
            outcome["result"] = result
            outcome["path"] = path
            done.set()

        def on_failure(_key: int) -> None:
            done.set()

        self.node.lookup(key, on_result, on_failure)
        if not done.wait(timeout) or "result" not in outcome:
            raise FleetError(f"lookup for key {key} did not resolve")
        path = list(outcome["path"])
        return {
            "key": key,
            "result": outcome["result"],
            "path": path,
            "hops": len(path),
        }

    def _op_fix_fingers(self, args: dict[str, Any]) -> dict[str, Any]:
        self.node.fix_all_fingers()
        return {"fixed": self.space.bits}

    def _op_set_value(self, args: dict[str, Any]) -> dict[str, Any]:
        self._trace = None
        self._value = float(args["value"])
        return {"value": self._value}

    def _op_load_trace(self, args: dict[str, Any]) -> dict[str, Any]:
        """Regenerate this node's CPU trace from the shared workload seed.

        Every agent derives the same fleet of traces from ``(seed, n)``
        deterministically, then keeps the one at its ``index`` — no trace
        bytes cross the control plane, yet supervisor, simulator twin, and
        every agent agree exactly on who reads what.
        """
        seed = int(args["seed"])
        index = int(args["index"])
        n = int(args["n"])
        identical = bool(args.get("identical", True))
        generator = TraceGenerator(
            noise_scale=float(args.get("noise_scale", 5.0)), seed=seed
        )
        traces = generator.generate_fleet(n, identical=identical)
        if not 0 <= index < len(traces):
            raise FleetError(f"trace index {index} out of range for fleet of {n}")
        self._trace = traces[index]
        self._slot = int(args.get("slot", 0))
        return {"n_slots": self._trace.n_slots, "period": self._trace.period}

    def _op_set_slot(self, args: dict[str, Any]) -> dict[str, Any]:
        self._slot = int(args["slot"])
        return {"slot": self._slot, "value": self._read_value()}

    def _op_start_continuous(self, args: dict[str, Any]) -> dict[str, Any]:
        key = int(args["key"])
        root = int(args["root"])
        aggregate = str(args.get("aggregate", "sum"))
        interval = float(args.get("interval", 0.25))
        self.service.start_continuous(key, root, aggregate, interval)
        return {"key": key, "root": root, "interval": interval}

    def _op_stop_continuous(self, args: dict[str, Any]) -> dict[str, Any]:
        key = int(args["key"])
        self.service.stop_continuous(key)
        return {"key": key}

    def _op_read_estimate(self, args: dict[str, Any]) -> dict[str, Any]:
        key = int(args["key"])
        state = self.service._continuous.get(key)
        if state is None:
            raise FleetError(f"no continuous aggregation active for key {key}")
        estimate = state.last_estimate
        return {
            "key": key,
            "estimate": float(estimate) if estimate is not None else None,
            "pushes_sent": state.pushes_sent,
        }

    def _op_leave(self, args: dict[str, Any]) -> dict[str, Any]:
        """Graceful departure: close services, notify ring neighbors, exit."""
        self.service.close()
        self.node.leave()
        self._stop.set()
        return {"left": True}

    def _op_shutdown(self, args: dict[str, Any]) -> dict[str, Any]:
        """Exit without the ring handoff (supervisor-driven teardown)."""
        self._stop.set()
        return {"stopping": True}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet.agent",
        description="Fleet node agent (spawned by the fleet supervisor).",
    )
    parser.add_argument("--ident", type=int, required=True)
    parser.add_argument("--bits", type=int, required=True)
    parser.add_argument("--supervisor-host", default="127.0.0.1")
    parser.add_argument("--supervisor-port", type=int, required=True)
    parser.add_argument("--scheme", default="balanced", choices=("basic", "balanced"))
    parser.add_argument("--stabilize-interval", type=float, default=0.1)
    parser.add_argument("--fix-fingers-interval", type=float, default=0.05)
    parser.add_argument("--check-predecessor-interval", type=float, default=0.25)
    parser.add_argument("--rpc-timeout", type=float, default=0.5)
    parser.add_argument("--telemetry-interval", type=float, default=0.5)
    parser.add_argument("--n-hint", type=int, default=1)
    parser.add_argument(
        "--span-jsonl",
        default=None,
        help="enable distributed tracing and stream this agent's span export here",
    )
    parser.add_argument("--log-level", default="WARNING")
    args = parser.parse_args(argv)
    logging.basicConfig(
        level=getattr(logging, args.log_level.upper(), logging.WARNING),
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    agent = FleetAgent(
        AgentOptions(
            ident=args.ident,
            bits=args.bits,
            supervisor_host=args.supervisor_host,
            supervisor_port=args.supervisor_port,
            scheme=args.scheme,
            stabilize_interval=args.stabilize_interval,
            fix_fingers_interval=args.fix_fingers_interval,
            check_predecessor_interval=args.check_predecessor_interval,
            rpc_timeout=args.rpc_timeout,
            telemetry_interval=args.telemetry_interval,
            n_hint=args.n_hint,
            span_jsonl=args.span_jsonl,
        )
    )
    return agent.run()


if __name__ == "__main__":
    raise SystemExit(main())

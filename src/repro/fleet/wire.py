"""Control-plane wire format shared by the fleet supervisor and agents.

The deployment harness has two planes. The *data* plane is the protocol
itself — Chord/DAT/MAAN messages over :class:`~repro.sim.udprpc.UdpRpcTransport`
datagrams, identical to the paper's prototype. The *control* plane is this
module: newline-delimited JSON frames on a TCP (supervisor <-> agent) or
Unix (CLI <-> supervisor) stream socket, carrying supervision commands,
their replies, and unsolicited agent events (hello, telemetry samples,
lifecycle notices).

Four frame shapes exist, all encoded as one JSON object per line:

* :class:`Hello` — the agent's first frame after connecting: identifier,
  PID, and the UDP address its transport bound (the supervisor seeds every
  peer's route book from these).
* :class:`Request` — a control command (``op`` + ``args``) tagged with a
  ``req_id`` for correlation.
* :class:`Reply` — the response to a request: ``ok`` + ``result`` payload,
  or ``ok=False`` + a human-readable ``error``.
* :class:`Event` — an unsolicited notification (``telemetry`` samples
  stream this way, one JSONL record per frame).

This module is pure data — no sockets, no clocks — so both the asyncio
supervisor and the thread-based agent (and the unit tests) share one
codec.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Union

from repro.errors import FleetWireError

__all__ = [
    "Hello",
    "Request",
    "Reply",
    "Event",
    "Frame",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "decode_frame",
]

#: Upper bound on one encoded frame (a status reply for a large fleet fits
#: comfortably; anything bigger is a protocol bug, not a big fleet).
MAX_FRAME_BYTES = 1 << 20


@dataclass(frozen=True)
class Hello:
    """Agent self-introduction: who I am and where my UDP socket lives.

    ``clock`` is the agent's telemetry-clock reading at the instant the
    frame was built. The supervisor subtracts it from its own clock at
    receipt to estimate the per-agent offset that maps span timestamps
    onto the supervisor timeline (fleet trace alignment); ``0.0`` from
    old agents degrades gracefully to "no alignment".
    """

    ident: int
    pid: int
    udp_host: str
    udp_port: int
    clock: float = 0.0


@dataclass(frozen=True)
class Request:
    """One control command addressed to the receiving endpoint."""

    op: str
    req_id: int
    args: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Reply:
    """The response to the :class:`Request` with the same ``req_id``."""

    req_id: int
    ok: bool
    result: dict[str, Any] = field(default_factory=dict)
    error: str = ""


@dataclass(frozen=True)
class Event:
    """An unsolicited agent -> supervisor notification."""

    name: str
    data: dict[str, Any] = field(default_factory=dict)


Frame = Union[Hello, Request, Reply, Event]


def encode_frame(frame: Frame) -> bytes:
    """Serialize a frame to one newline-terminated JSON line."""
    obj: dict[str, Any]
    if isinstance(frame, Hello):
        obj = {
            "hello": {
                "ident": frame.ident,
                "pid": frame.pid,
                "udp_host": frame.udp_host,
                "udp_port": frame.udp_port,
                "clock": frame.clock,
            }
        }
    elif isinstance(frame, Request):
        obj = {"op": frame.op, "req_id": frame.req_id, "args": frame.args}
    elif isinstance(frame, Reply):
        obj = {"req_id": frame.req_id, "ok": frame.ok, "result": frame.result}
        if frame.error:
            obj["error"] = frame.error
    elif isinstance(frame, Event):
        obj = {"event": frame.name, "data": frame.data}
    else:  # pragma: no cover - exhaustive over the union
        raise FleetWireError(f"not a control frame: {frame!r}")
    try:
        data = json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"
    except (TypeError, ValueError) as exc:
        raise FleetWireError(f"frame is not JSON-serializable: {exc}") from exc
    if len(data) > MAX_FRAME_BYTES:
        raise FleetWireError(
            f"frame of {len(data)} bytes exceeds the {MAX_FRAME_BYTES}-byte budget"
        )
    return data


def _require(obj: dict[str, Any], key: str, kinds: tuple[type, ...]) -> Any:
    try:
        value = obj[key]
    except KeyError:
        raise FleetWireError(f"frame missing required field {key!r}") from None
    if not isinstance(value, kinds):
        raise FleetWireError(
            f"frame field {key!r} has type {type(value).__name__}, "
            f"expected {'/'.join(k.__name__ for k in kinds)}"
        )
    return value


def decode_frame(data: bytes | str) -> Frame:
    """Parse one line back into a frame; raises :class:`FleetWireError`."""
    if isinstance(data, bytes):
        if len(data) > MAX_FRAME_BYTES:
            raise FleetWireError(
                f"frame of {len(data)} bytes exceeds the {MAX_FRAME_BYTES}-byte budget"
            )
        try:
            text = data.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise FleetWireError(f"frame is not valid UTF-8: {exc}") from exc
    else:
        text = data
    try:
        obj = json.loads(text)
    except ValueError as exc:
        raise FleetWireError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise FleetWireError(f"frame must be a JSON object, got {type(obj).__name__}")

    if "hello" in obj:
        hello = _require(obj, "hello", (dict,))
        return Hello(
            ident=int(_require(hello, "ident", (int,))),
            pid=int(_require(hello, "pid", (int,))),
            udp_host=str(_require(hello, "udp_host", (str,))),
            udp_port=int(_require(hello, "udp_port", (int,))),
            clock=float(hello.get("clock") or 0.0),
        )
    if "event" in obj:
        return Event(
            name=str(_require(obj, "event", (str,))),
            data=dict(obj.get("data") or {}),
        )
    if "op" in obj:
        return Request(
            op=str(_require(obj, "op", (str,))),
            req_id=int(_require(obj, "req_id", (int,))),
            args=dict(obj.get("args") or {}),
        )
    if "req_id" in obj:
        return Reply(
            req_id=int(_require(obj, "req_id", (int,))),
            ok=bool(_require(obj, "ok", (bool,))),
            result=dict(obj.get("result") or {}),
            error=str(obj.get("error") or ""),
        )
    raise FleetWireError(f"unrecognized frame shape: {sorted(obj)}")

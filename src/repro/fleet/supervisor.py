"""Fleet supervisor: spawn, monitor, and command hundreds of agent processes.

:class:`FleetSupervisor` is the asyncio control-plane hub of the
deployment harness. It

* spawns one ``python -m repro.fleet.agent`` OS process per node, with
  identifiers assigned up front by the configured strategy (probing by
  default — the paper's load-balancing identifier assignment) so the live
  ring matches the simulator's for the same seed;
* accepts each agent's control TCP connection, collects its
  :class:`~repro.fleet.wire.Hello` (PID + bound UDP address), and
  broadcasts the full route book so every transport can reach every peer;
* bootstraps the ring in stages: the seed agent ``create``s, the rest
  join in batches sized by ``join_batch`` (joining through an
  already-stable member keeps lookup churn bounded);
* injects failures (SIGKILL) with an optional restart-and-rejoin policy,
  mirrors graceful ``leave``, and persists every agent's telemetry stream
  as one JSONL file per node under ``state_dir``;
* serves an admin Unix socket (same wire protocol) so the ``python -m
  repro.fleet`` CLI can drive a running fleet from another process.

The supervisor never touches protocol internals — everything goes through
the agents' control ops, exactly as a remote deployment would.
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, AsyncIterator, Awaitable, Callable, Iterable

from repro.chord.idgen import make_assigner
from repro.chord.idspace import IdSpace
from repro.chord.ring import StaticRing
from repro.errors import FleetError
from repro.fleet.wire import Event, Hello, Reply, Request, decode_frame, encode_frame
from repro.util.rng import ensure_rng

__all__ = ["FleetConfig", "RestartPolicy", "AgentHandle", "FleetSupervisor"]

logger = logging.getLogger("repro.fleet.supervisor")


@dataclass(frozen=True)
class RestartPolicy:
    """What the supervisor does when an agent process dies unexpectedly."""

    enabled: bool = False
    max_restarts: int = 1
    delay: float = 0.25


@dataclass(frozen=True)
class FleetConfig:
    """Everything needed to boot and run one fleet."""

    n_nodes: int = 16
    bits: int = 16
    scheme: str = "balanced"
    id_strategy: str = "probing"
    seed: int = 2007
    join_batch: int = 8
    stabilize_interval: float = 0.1
    fix_fingers_interval: float = 0.05
    check_predecessor_interval: float = 0.25
    rpc_timeout: float = 0.5
    telemetry_interval: float = 0.5
    hello_timeout: float = 30.0
    call_timeout: float = 15.0
    converge_timeout: float = 60.0
    state_dir: str = ".fleet"
    restart: RestartPolicy = field(default_factory=RestartPolicy)
    python: str = sys.executable
    log_level: str = "WARNING"
    #: Enable distributed tracing on every agent: each one streams its
    #: span export to ``state_dir/spans-<ident>.jsonl`` and the supervisor
    #: records per-agent clock offsets (from the Hello handshake) in
    #: ``state_dir/clock-offsets.json`` for trace alignment.
    trace_spans: bool = False

    @property
    def space(self) -> IdSpace:
        return IdSpace(self.bits)

    def agent_argv(self, ident: int, control_port: int, n_hint: int) -> list[str]:
        return [
            self.python,
            "-m",
            "repro.fleet.agent",
            "--ident", str(ident),
            "--bits", str(self.bits),
            "--supervisor-host", "127.0.0.1",
            "--supervisor-port", str(control_port),
            "--scheme", self.scheme,
            "--stabilize-interval", str(self.stabilize_interval),
            "--fix-fingers-interval", str(self.fix_fingers_interval),
            "--check-predecessor-interval", str(self.check_predecessor_interval),
            "--rpc-timeout", str(self.rpc_timeout),
            "--telemetry-interval", str(self.telemetry_interval),
            "--n-hint", str(n_hint),
            "--log-level", self.log_level,
        ] + (
            ["--span-jsonl", str(Path(self.state_dir) / f"spans-{ident}.jsonl")]
            if self.trace_spans
            else []
        )


class AgentHandle:
    """The supervisor-side view of one agent process."""

    def __init__(self, ident: int, process: asyncio.subprocess.Process) -> None:
        self.ident = ident
        self.process = process
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self.udp_addr: tuple[str, int] | None = None
        self.pid: int | None = process.pid
        self.state = "spawned"  # spawned -> connected -> joined -> left/killed/dead
        self.restarts = 0
        self.hello_event: asyncio.Event = asyncio.Event()
        self.exit_event: asyncio.Event = asyncio.Event()
        self._req_seq = 0
        self._pending: dict[int, asyncio.Future[Reply]] = {}
        self.telemetry_path: Path | None = None
        self.last_telemetry: dict[str, Any] = {}
        #: Supervisor-minus-agent telemetry-clock delta, estimated at Hello
        #: receipt; adding it to agent span timestamps maps them onto the
        #: supervisor timeline. ``None`` until the agent says hello with a
        #: clock (i.e. with tracing enabled).
        self.clock_offset: float | None = None

    @property
    def alive(self) -> bool:
        return self.process.returncode is None

    async def call(self, op: str, args: dict[str, Any] | None = None, timeout: float = 15.0) -> dict[str, Any]:
        """Issue one control request and await its reply."""
        writer = self.writer
        if writer is None or writer.is_closing():
            raise FleetError(f"agent {self.ident} has no control connection")
        self._req_seq += 1
        req_id = self._req_seq
        future: asyncio.Future[Reply] = asyncio.get_running_loop().create_future()
        self._pending[req_id] = future
        writer.write(encode_frame(Request(op=op, req_id=req_id, args=args or {})))
        try:
            await writer.drain()
            reply = await asyncio.wait_for(future, timeout)
        except (asyncio.TimeoutError, ConnectionError) as exc:
            raise FleetError(f"agent {self.ident}: op {op!r} failed: {exc}") from exc
        finally:
            self._pending.pop(req_id, None)
        if not reply.ok:
            raise FleetError(f"agent {self.ident}: op {op!r} rejected: {reply.error}")
        return reply.result

    def resolve(self, reply: Reply) -> None:
        future = self._pending.get(reply.req_id)
        if future is not None and not future.done():
            future.set_result(reply)

    def fail_pending(self, reason: str) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(FleetError(reason))
        self._pending.clear()


class FleetSupervisor:
    """Boot and drive a fleet of real agent processes on localhost."""

    def __init__(self, config: FleetConfig | None = None) -> None:
        self.config = config or FleetConfig()
        self.space = self.config.space
        self.agents: dict[int, AgentHandle] = {}
        self._server: asyncio.base_events.Server | None = None
        self._admin_server: asyncio.base_events.Server | None = None
        self.control_port = 0
        self._rng = ensure_rng(self.config.seed)
        self._planned_idents: list[int] = []
        # Insertion-ordered (spawn-ordered) so teardown cancellation is
        # deterministic; a set would iterate in hash order.
        self._watchers: dict[asyncio.Task[None], None] = {}
        self._closing = False
        self.state_dir = Path(self.config.state_dir)
        self.started_at: float | None = None
        #: Ops the admin socket exposes; the CLI calls these by name.
        self._admin_ops: dict[str, Callable[[dict[str, Any]], Awaitable[dict[str, Any]]]] = {
            "status": self._admin_status,
            "join": self._admin_join,
            "leave": self._admin_leave,
            "kill": self._admin_kill,
            "route": self._admin_route,
            "down": self._admin_down,
        }

    # ------------------------------------------------------------------ #
    # Boot sequence
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Spawn the fleet and bootstrap the ring (seed + batched joins)."""
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.started_at = time.monotonic()
        self._server = await asyncio.start_server(
            self._handle_agent_connection, host="127.0.0.1", port=0
        )
        self.control_port = self._server.sockets[0].getsockname()[1]
        logger.info("control server on 127.0.0.1:%d", self.control_port)

        assigner = make_assigner(self.config.id_strategy)
        ring = assigner.build_ring(self.space, self.config.n_nodes, rng=self.config.seed)
        self._planned_idents = list(ring.nodes)

        seed_ident = self._planned_idents[0]
        await self._spawn_and_hello([seed_ident])
        await self.agents[seed_ident].call("create", timeout=self.config.call_timeout)
        self.agents[seed_ident].state = "joined"

        remaining = self._planned_idents[1:]
        batch_size = max(self.config.join_batch, 1)
        for start in range(0, len(remaining), batch_size):
            batch = remaining[start : start + batch_size]
            await self._spawn_and_hello(batch)
            await self.broadcast_routes()
            for ident in batch:
                await self.agents[ident].call(
                    "join",
                    {"bootstrap": seed_ident, "timeout": self.config.call_timeout},
                    timeout=self.config.call_timeout + 5.0,
                )
                self.agents[ident].state = "joined"
        await self.broadcast_routes()

    async def _spawn_and_hello(self, idents: Iterable[int]) -> None:
        handles = [await self.spawn_agent(ident) for ident in idents]
        await asyncio.gather(*(self._await_hello(h) for h in handles))

    async def spawn_agent(self, ident: int) -> AgentHandle:
        if ident in self.agents and self.agents[ident].alive:
            raise FleetError(f"agent {ident} is already running")
        argv = self.config.agent_argv(ident, self.control_port, n_hint=self.config.n_nodes)
        process = await asyncio.create_subprocess_exec(
            *argv,
            stdout=asyncio.subprocess.DEVNULL,
            stderr=asyncio.subprocess.DEVNULL,
        )
        handle = AgentHandle(ident, process)
        handle.telemetry_path = self.state_dir / f"telemetry-{ident}.jsonl"
        self.agents[ident] = handle
        watcher = asyncio.get_running_loop().create_task(self._watch_exit(handle))
        self._watchers[watcher] = None
        watcher.add_done_callback(lambda task: self._watchers.pop(task, None))
        return handle

    async def _await_hello(self, handle: AgentHandle) -> None:
        try:
            await asyncio.wait_for(handle.hello_event.wait(), self.config.hello_timeout)
        except asyncio.TimeoutError:
            raise FleetError(
                f"agent {handle.ident} (pid {handle.pid}) did not say hello "
                f"within {self.config.hello_timeout}s"
            ) from None

    async def broadcast_routes(self) -> None:
        """Push the full route book (and fleet-size hint) to every agent."""
        routes = {
            str(h.ident): [h.udp_addr[0], h.udp_addr[1]]
            for h in self.agents.values()
            if h.udp_addr is not None and h.alive
        }
        await self.broadcast("add_routes", {"routes": routes, "n": len(routes)})

    # ------------------------------------------------------------------ #
    # Agent connection plumbing
    # ------------------------------------------------------------------ #

    async def _handle_agent_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        handle: AgentHandle | None = None
        try:
            async for frame in self._frames(reader):
                if isinstance(frame, Hello):
                    handle = self.agents.get(frame.ident)
                    if handle is None:
                        logger.warning("hello from unknown agent %d; dropping", frame.ident)
                        return
                    handle.reader = reader
                    handle.writer = writer
                    handle.udp_addr = (frame.udp_host, frame.udp_port)
                    handle.pid = frame.pid
                    if self.config.trace_spans and self.started_at is not None:
                        # Align the agent's telemetry clock with ours: its
                        # span timestamps plus this offset land on the
                        # supervisor timeline (modulo the one-way control
                        # frame delay, sub-ms on localhost).
                        supervisor_now = time.monotonic() - self.started_at
                        handle.clock_offset = supervisor_now - frame.clock
                        self._write_clock_offsets()
                    handle.state = "connected"
                    handle.hello_event.set()
                elif handle is None:
                    logger.warning("frame before hello; dropping connection")
                    return
                elif isinstance(frame, Reply):
                    handle.resolve(frame)
                elif isinstance(frame, Event):
                    self._record_event(handle, frame)
        finally:
            if handle is not None:
                handle.fail_pending(f"agent {handle.ident} control connection closed")
            writer.close()

    async def _frames(self, reader: asyncio.StreamReader) -> AsyncIterator[Any]:
        while True:
            try:
                line = await reader.readline()
            except (ConnectionError, asyncio.IncompleteReadError):
                return
            if not line:
                return
            try:
                yield decode_frame(line)
            except ValueError as exc:
                logger.warning("dropping malformed frame: %s", exc)

    def _write_clock_offsets(self) -> None:
        """Persist per-agent clock offsets for offline trace assembly.

        Keyed by ident, matching the trailing token of the
        ``spans-<ident>.jsonl`` file names —
        :func:`repro.telemetry.traces.offset_for` resolves them either way.
        """
        offsets = {
            str(h.ident): round(h.clock_offset, 6)
            for h in self.agents.values()
            if h.clock_offset is not None
        }
        path = self.state_dir / "clock-offsets.json"
        with path.open("w", encoding="utf-8") as fh:
            json.dump(offsets, fh, indent=2, sort_keys=True)
            fh.write("\n")

    def _record_event(self, handle: AgentHandle, event: Event) -> None:
        if event.name != "telemetry":
            logger.info("agent %d event %s: %s", handle.ident, event.name, event.data)
            return
        handle.last_telemetry = event.data
        path = handle.telemetry_path
        if path is not None:
            with path.open("a", encoding="utf-8") as fh:
                fh.write(encode_frame(Event(name="telemetry", data=event.data)).decode("utf-8"))

    async def _watch_exit(self, handle: AgentHandle) -> None:
        await handle.process.wait()
        handle.exit_event.set()
        handle.fail_pending(f"agent {handle.ident} exited")
        if self._closing or handle.state in ("left", "stopping"):
            handle.state = "dead"
            return
        was_killed = handle.state == "killed"
        handle.state = "dead"
        policy = self.config.restart
        if was_killed and policy.enabled and handle.restarts < policy.max_restarts:
            restarts = handle.restarts + 1
            logger.info("restarting agent %d (attempt %d)", handle.ident, restarts)
            await asyncio.sleep(policy.delay)
            # Let the survivors excise the dead identifier first: rejoining
            # the same ident while the ring still carries its stale entry
            # resolves the self-lookup to the stale entry (a lone ring).
            if self.live_idents():
                await self.wait_converged()
            try:
                await self.join_agent(handle.ident)
            except FleetError:
                logger.exception("restart of agent %d failed", handle.ident)
                return
            self.agents[handle.ident].restarts = restarts

    # ------------------------------------------------------------------ #
    # Fleet operations
    # ------------------------------------------------------------------ #

    def _bootstrap_ident(self, exclude: int | None = None) -> int:
        for handle in self.agents.values():
            if handle.state == "joined" and handle.alive and handle.ident != exclude:
                return handle.ident
        raise FleetError("no live joined agent to bootstrap through")

    def pick_ident(self) -> int:
        """A fresh identifier for an ad-hoc join (uniform over the space)."""
        taken = {i for i, h in self.agents.items() if h.alive}
        candidate = int(self._rng.integers(0, self.space.size))
        while candidate in taken:
            candidate = int(self._rng.integers(0, self.space.size))
        return candidate

    async def join_agent(self, ident: int) -> AgentHandle:
        """Spawn a new agent and have it join through a live member.

        The join itself is retried: a join racing failure detection can
        resolve the self-lookup to a stale ring entry (the agent rejects
        that as a lone-ring outcome), and one more attempt after the ring
        has excised the stale identifier lands cleanly.
        """
        handle = await self.spawn_agent(ident)
        await self._await_hello(handle)
        attempts = 3
        for attempt in range(1, attempts + 1):
            bootstrap = self._bootstrap_ident(exclude=ident)
            await self.broadcast_routes()
            try:
                await handle.call(
                    "join",
                    {"bootstrap": bootstrap, "timeout": self.config.call_timeout},
                    timeout=self.config.call_timeout + 5.0,
                )
                break
            except FleetError:
                if attempt == attempts or not handle.alive:
                    raise
                logger.warning(
                    "join of %d via %d failed (attempt %d/%d); retrying",
                    ident, bootstrap, attempt, attempts,
                )
                await asyncio.sleep(0.5 * attempt)
        handle.state = "joined"
        return handle

    async def leave(self, ident: int, timeout: float | None = None) -> None:
        """Graceful departure: the agent hands off and exits cleanly."""
        handle = self._live(ident)
        handle.state = "stopping"
        await handle.call("leave", timeout=timeout or self.config.call_timeout)
        handle.state = "left"
        await asyncio.wait_for(handle.exit_event.wait(), self.config.call_timeout)

    async def kill(self, ident: int) -> None:
        """Fail-stop injection: SIGKILL, no goodbye on either plane."""
        handle = self._live(ident)
        handle.state = "killed"
        handle.process.kill()
        await handle.exit_event.wait()

    def _live(self, ident: int) -> AgentHandle:
        handle = self.agents.get(ident)
        if handle is None or not handle.alive:
            raise FleetError(f"agent {ident} is not running")
        return handle

    def live_idents(self) -> list[int]:
        return sorted(i for i, h in self.agents.items() if h.alive and h.state == "joined")

    async def broadcast(
        self, op: str, args: dict[str, Any] | None = None, timeout: float | None = None
    ) -> dict[int, dict[str, Any]]:
        """Run one op on every live agent concurrently; returns per-ident results."""
        timeout = timeout or self.config.call_timeout
        handles = [h for h in self.agents.values() if h.alive and h.writer is not None]
        results = await asyncio.gather(
            *(h.call(op, args, timeout=timeout) for h in handles), return_exceptions=True
        )
        out: dict[int, dict[str, Any]] = {}
        for handle, result in zip(handles, results):
            if isinstance(result, BaseException):
                logger.warning("broadcast %s to %d failed: %s", op, handle.ident, result)
            else:
                out[handle.ident] = result
        return out

    async def statuses(self) -> dict[int, dict[str, Any]]:
        return await self.broadcast("status")

    async def route(self, key: int, origin: int | None = None) -> dict[str, Any]:
        """Resolve ``successor(key)`` from ``origin`` and show the path."""
        ident = origin if origin is not None else self._bootstrap_ident()
        return await self._live(ident).call(
            "route", {"key": key, "timeout": self.config.call_timeout},
            timeout=self.config.call_timeout + 5.0,
        )

    async def wait_converged(self, timeout: float | None = None) -> bool:
        """Poll agent statuses until successor/predecessor pointers match the
        ideal ring over the current live membership."""
        deadline = time.monotonic() + (timeout or self.config.converge_timeout)
        while time.monotonic() < deadline:
            members = self.live_idents()
            if len(members) >= 1 and await self._converged(members):
                return True
            await asyncio.sleep(0.25)
        return False

    async def _converged(self, members: list[int]) -> bool:
        ring = StaticRing.from_sorted_ids(self.space, members)
        statuses = await self.statuses()
        if sorted(statuses) != members:
            return False
        for ident in members:
            status = statuses[ident]
            want_succ = ring.successor_of_node(ident)
            want_pred = ring.predecessor_of_node(ident)
            if status.get("successor") != want_succ:
                return False
            if len(members) > 1 and status.get("predecessor") != want_pred:
                return False
        return True

    async def down(self) -> None:
        """Graceful fleet teardown: leave everyone, reap stragglers."""
        self._closing = True
        live = [h for h in self.agents.values() if h.alive]
        for handle in live:
            if handle.writer is not None and not handle.writer.is_closing():
                try:
                    handle.state = "stopping"
                    await handle.call("shutdown", timeout=2.0)
                except FleetError:
                    pass
        deadline = time.monotonic() + 5.0
        for handle in live:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not handle.alive:
                break
            try:
                await asyncio.wait_for(handle.exit_event.wait(), remaining)
            except asyncio.TimeoutError:
                break
        for handle in self.agents.values():
            if handle.alive:
                handle.process.kill()
        await asyncio.gather(
            *(h.process.wait() for h in self.agents.values()), return_exceptions=True
        )
        for watcher in list(self._watchers):
            watcher.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._admin_server is not None:
            self._admin_server.close()
            await self._admin_server.wait_closed()

    # ------------------------------------------------------------------ #
    # Admin socket (CLI <-> supervisor)
    # ------------------------------------------------------------------ #

    @property
    def admin_socket_path(self) -> Path:
        return self.state_dir / "fleet.sock"

    def register_admin_op(
        self, name: str, handler: Callable[[dict[str, Any]], Awaitable[dict[str, Any]]]
    ) -> None:
        """Expose an extra op on the admin socket (e.g. the CLI's replay)."""
        self._admin_ops[name] = handler

    async def serve_admin(self) -> None:
        """Expose the admin ops on a Unix socket inside ``state_dir``."""
        path = self.admin_socket_path
        path.unlink(missing_ok=True)
        self._admin_server = await asyncio.start_unix_server(
            self._handle_admin_connection, path=str(path)
        )

    async def _handle_admin_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            async for frame in self._frames(reader):
                if not isinstance(frame, Request):
                    continue
                op = self._admin_ops.get(frame.op)
                if op is None:
                    reply = Reply(frame.req_id, ok=False, error=f"unknown admin op {frame.op!r}")
                else:
                    try:
                        reply = Reply(frame.req_id, ok=True, result=await op(frame.args))
                    except FleetError as exc:
                        reply = Reply(frame.req_id, ok=False, error=str(exc))
                writer.write(encode_frame(reply))
                await writer.drain()
        finally:
            writer.close()

    async def _admin_status(self, args: dict[str, Any]) -> dict[str, Any]:
        statuses = await self.statuses()
        uptime = time.monotonic() - self.started_at if self.started_at else 0.0
        return {
            "n_live": len(self.live_idents()),
            "uptime": round(uptime, 1),
            "agents": {str(i): s for i, s in sorted(statuses.items())},
        }

    async def _admin_join(self, args: dict[str, Any]) -> dict[str, Any]:
        ident = int(args["ident"]) if args.get("ident") is not None else self.pick_ident()
        handle = await self.join_agent(ident)
        return {"ident": handle.ident, "pid": handle.pid}

    async def _admin_leave(self, args: dict[str, Any]) -> dict[str, Any]:
        ident = int(args["ident"])
        await self.leave(ident)
        return {"ident": ident, "left": True}

    async def _admin_kill(self, args: dict[str, Any]) -> dict[str, Any]:
        ident = int(args["ident"])
        await self.kill(ident)
        return {"ident": ident, "killed": True}

    async def _admin_route(self, args: dict[str, Any]) -> dict[str, Any]:
        origin = int(args["origin"]) if args.get("origin") is not None else None
        return await self.route(int(args["key"]), origin)

    async def _admin_down(self, args: dict[str, Any]) -> dict[str, Any]:
        # The CLI's `down`: reply first, then tear down (the caller's
        # connection dies with the server, which is expected).
        asyncio.get_running_loop().create_task(self._down_soon())
        return {"stopping": True}

    async def _down_soon(self) -> None:
        await asyncio.sleep(0.1)
        await self.down()

    async def run_until_signal(self) -> None:
        """Foreground mode: serve until SIGINT/SIGTERM, then tear down."""
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        admin_closed = self._admin_server
        try:
            if admin_closed is not None:
                waiter = loop.create_task(admin_closed.wait_closed())
                stopper = loop.create_task(stop.wait())
                done, pending = await asyncio.wait(
                    {waiter, stopper}, return_when=asyncio.FIRST_COMPLETED
                )
                for task in pending:
                    task.cancel()
            else:
                await stop.wait()
        finally:
            for sig in (signal.SIGINT, signal.SIGTERM):
                loop.remove_signal_handler(sig)
            if not self._closing:
                await self.down()

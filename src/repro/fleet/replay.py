"""Execute workload plans against a live fleet.

The replay layer is the thin async boundary between pure plans
(:mod:`repro.fleet.plan`) and real processes: it sleeps real seconds,
issues control ops through the :class:`~repro.fleet.supervisor.
FleetSupervisor`, and records what actually happened so
:mod:`repro.fleet.compare` can hold the live run against the simulator's
answer for the same seed.
"""

from __future__ import annotations

import asyncio
import logging
import time
from dataclasses import dataclass, field
from typing import Any

from repro.chord.ring import StaticRing
from repro.errors import FleetError
from repro.fleet.plan import ChurnReplayPlan, Fig9ReplayPlan
from repro.fleet.supervisor import FleetSupervisor
from repro.gma.traces import TraceGenerator

__all__ = [
    "ChurnLiveResult",
    "Fig9LiveResult",
    "replay_churn_live",
    "replay_fig9_live",
]

logger = logging.getLogger("repro.fleet.replay")


@dataclass
class ChurnLiveResult:
    """What a live churn replay actually did to the fleet."""

    plan: ChurnReplayPlan
    applied: list[tuple[str, int]] = field(default_factory=list)
    failed: list[tuple[str, int, str]] = field(default_factory=list)
    final_members: tuple[int, ...] = ()
    converged: bool = False
    wall_seconds: float = 0.0


@dataclass
class Fig9LiveResult:
    """Per-slot live accuracy series plus fleet-wide traffic accounting."""

    plan: Fig9ReplayPlan
    root: int = 0
    key: int = 0
    times: list[float] = field(default_factory=list)
    actual: list[float] = field(default_factory=list)
    aggregated: list[float] = field(default_factory=list)
    total_pushes: int = 0
    per_node_sent: dict[int, int] = field(default_factory=dict)
    per_node_received: dict[int, int] = field(default_factory=dict)
    wall_seconds: float = 0.0

    def total_messages(self) -> int:
        return sum(self.per_node_sent.values())

    def imbalance(self) -> float:
        """max/mean send+receive load across nodes (1.0 = perfectly even)."""
        totals = [
            self.per_node_sent.get(i, 0) + self.per_node_received.get(i, 0)
            for i in set(self.per_node_sent) | set(self.per_node_received)
        ]
        if not totals:
            return 0.0
        mean = sum(totals) / len(totals)
        return max(totals) / mean if mean > 0 else 0.0


async def replay_churn_live(
    supervisor: FleetSupervisor,
    plan: ChurnReplayPlan,
    time_scale: float = 0.0,
    max_gap: float = 2.0,
) -> ChurnLiveResult:
    """Apply a churn plan to the live fleet, in order.

    ``time_scale`` compresses the plan's virtual timeline into wall time
    (0 applies events back-to-back — the default for smoke runs); a gap is
    never allowed to exceed ``max_gap`` real seconds so long scenarios stay
    replayable. After the last action the fleet is given a convergence
    window: the result's ``converged`` flag is the live ring matching the
    ideal ring over the surviving membership.
    """
    result = ChurnLiveResult(plan=plan)
    started = time.monotonic()
    previous_time = 0.0
    for action in plan.actions:
        if time_scale > 0.0:
            gap = min((action.time - previous_time) * time_scale, max_gap)
            if gap > 0:
                await asyncio.sleep(gap)
        previous_time = action.time
        try:
            if action.op == "join":
                await supervisor.join_agent(action.ident)
            elif action.op == "leave":
                await supervisor.leave(action.ident)
            elif action.op == "kill":
                await supervisor.kill(action.ident)
            else:
                raise FleetError(f"unknown plan op {action.op!r}")
        except FleetError as exc:
            logger.warning("churn action %s(%d) failed: %s", action.op, action.ident, exc)
            result.failed.append((action.op, action.ident, str(exc)))
            continue
        result.applied.append((action.op, action.ident))
    result.converged = await supervisor.wait_converged()
    result.final_members = tuple(supervisor.live_idents())
    result.wall_seconds = time.monotonic() - started
    return result


async def replay_fig9_live(
    supervisor: FleetSupervisor, plan: Fig9ReplayPlan
) -> Fig9LiveResult:
    """Run the Fig. 9 accuracy workload on the live fleet.

    Every agent regenerates the same deterministic trace fleet from
    ``(seed, n_nodes)`` and keeps the trace at its sorted-ring position —
    the exact node->trace mapping :func:`~repro.experiments.fig9_accuracy.
    run_fig9_accuracy` uses — then pushes continuously toward the key's
    root. Per slot, the supervisor advances every agent's trace cursor,
    dwells ``slot_duration`` real seconds (several push periods), and
    samples the root's estimate. Ground truth is computed supervisor-side
    from the same traces, so live error is directly comparable to the
    simulator's Fig. 9 series.
    """
    members = supervisor.live_idents()
    if len(members) < 2:
        raise FleetError(f"fig9 replay needs at least 2 live agents, got {len(members)}")
    started = time.monotonic()
    space = supervisor.space
    ring = StaticRing.from_sorted_ids(space, members)
    key = plan.key(space)
    root = ring.successor(key)
    result = Fig9LiveResult(plan=plan, root=root, key=key)

    # Same derivation as the agents run locally: index == sorted position.
    traces = TraceGenerator(seed=plan.seed).generate_fleet(
        plan.n_nodes, identical=plan.identical_traces
    )
    n_slots = min(plan.n_slots, traces[0].n_slots)
    await asyncio.gather(
        *(
            supervisor.agents[ident].call(
                "load_trace",
                {
                    "seed": plan.seed,
                    "index": index,
                    "n": plan.n_nodes,
                    "identical": plan.identical_traces,
                },
            )
            for index, ident in enumerate(members)
        )
    )
    await supervisor.broadcast(
        "start_continuous",
        {
            "key": key,
            "root": root,
            "aggregate": plan.aggregate,
            "interval": plan.push_interval,
        },
    )
    try:
        for slot in range(n_slots):
            await supervisor.broadcast("set_slot", {"slot": slot})
            await asyncio.sleep(plan.slot_duration)
            reading = await supervisor.agents[root].call("read_estimate", {"key": key})
            truth = sum(traces[index].at_slot(slot) for index in range(len(members)))
            if plan.aggregate == "avg":
                truth /= len(members)
            result.times.append(slot * traces[0].period)
            result.actual.append(float(truth))
            estimate = reading.get("estimate")
            result.aggregated.append(float(estimate) if estimate is not None else 0.0)
    finally:
        # Snapshot before stop_continuous: stopping discards the per-key
        # state (and with it the push counters).
        statuses = await supervisor.statuses()
        await supervisor.broadcast("stop_continuous", {"key": key})
    for ident, status in statuses.items():
        result.per_node_sent[ident] = int(status.get("sent", 0))
        result.per_node_received[ident] = int(status.get("received", 0))
        result.total_pushes += sum(int(v) for v in status.get("pushes", {}).values())
    result.wall_seconds = time.monotonic() - started
    return result

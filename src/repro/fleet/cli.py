"""Operator CLI for the fleet harness: ``python -m repro.fleet``.

Two modes share one wire protocol:

* ``up`` and ``smoke`` run a :class:`~repro.fleet.supervisor.
  FleetSupervisor` in the foreground (``up`` until SIGINT, ``smoke`` as a
  scripted one-shot used by CI);
* every other subcommand (``status`` / ``join`` / ``leave`` / ``kill`` /
  ``route`` / ``replay`` / ``down``) is a thin client that connects to a
  running supervisor's admin Unix socket under ``--state-dir`` and prints
  the JSON reply.

The walkthrough lives in ``docs/FLEET.md``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import socket
import sys
from typing import Any

from repro.errors import FleetError
from repro.fleet.compare import compare_fig9, run_fig9_sim_twin
from repro.fleet.plan import plan_fleet_churn, plan_fleet_fig9
from repro.fleet.report import build_fleet_report, check_traces, render_fleet_report
from repro.fleet.replay import replay_churn_live, replay_fig9_live
from repro.fleet.supervisor import FleetConfig, FleetSupervisor, RestartPolicy
from repro.fleet.wire import Reply, Request, decode_frame, encode_frame

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Multi-process deployment harness for the DAT reproduction.",
    )
    parser.add_argument(
        "--state-dir",
        default=".fleet",
        help="supervisor state directory (admin socket + telemetry JSONL)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    up = sub.add_parser("up", help="boot a fleet and serve until SIGINT")
    _add_fleet_options(up)

    smoke = sub.add_parser(
        "smoke",
        help="one-shot CI smoke: boot, converge, replay, kill/rejoin, compare, down",
    )
    _add_fleet_options(smoke)
    smoke.add_argument("--slots", type=int, default=4, help="fig9 slots to replay")
    smoke.add_argument(
        "--report", default="", help="write the comparison report JSON here"
    )

    sub.add_parser("status", help="live agent snapshots from a running fleet")

    join = sub.add_parser("join", help="spawn one more agent and join the ring")
    join.add_argument("--ident", type=int, default=None, help="identifier (default: random unused)")

    leave = sub.add_parser("leave", help="graceful departure of one agent")
    leave.add_argument("ident", type=int)

    kill = sub.add_parser("kill", help="SIGKILL one agent (fail-stop injection)")
    kill.add_argument("ident", type=int)

    route = sub.add_parser("route", help="resolve successor(key) and show the path")
    route.add_argument("key", type=int)
    route.add_argument("--origin", type=int, default=None)

    replay = sub.add_parser("replay", help="replay a workload on the running fleet")
    replay.add_argument("workload", choices=("fig9", "churn"))
    replay.add_argument("--seed", type=int, default=2007)
    replay.add_argument("--slots", type=int, default=4, help="fig9: trace slots")
    replay.add_argument("--scenario", default="grid", help="churn: scenario name")
    replay.add_argument("--duration", type=float, default=120.0, help="churn: virtual horizon")
    replay.add_argument(
        "--time-scale", type=float, default=0.0, help="churn: virtual->wall scale (0 = back-to-back)"
    )

    report = sub.add_parser(
        "report",
        help="merge the state dir's telemetry + span exports into one fleet report",
    )
    report.add_argument("--json", action="store_true", help="machine-readable output")
    report.add_argument(
        "--require-traces",
        metavar="ROOT",
        default=None,
        help="exit 1 unless cross-node traces rooted at ROOT assembled cleanly",
    )

    sub.add_parser("down", help="tear down the running fleet")
    return parser


def _add_fleet_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-n", "--nodes", type=int, default=16)
    parser.add_argument("--bits", type=int, default=16)
    parser.add_argument("--scheme", default="balanced", choices=("basic", "balanced"))
    parser.add_argument("--id-strategy", default="probing")
    parser.add_argument("--seed", type=int, default=2007)
    parser.add_argument("--join-batch", type=int, default=8)
    parser.add_argument("--stabilize-interval", type=float, default=0.1)
    parser.add_argument("--rpc-timeout", type=float, default=0.5)
    parser.add_argument(
        "--restart", action="store_true", help="restart-and-rejoin killed agents"
    )
    parser.add_argument(
        "--trace-spans",
        action="store_true",
        help=(
            "enable distributed tracing on every agent (span exports + clock "
            "offsets under --state-dir; merge with the `report` subcommand)"
        ),
    )


def config_from_args(args: argparse.Namespace) -> FleetConfig:
    return FleetConfig(
        n_nodes=args.nodes,
        bits=args.bits,
        scheme=args.scheme,
        id_strategy=args.id_strategy,
        seed=args.seed,
        join_batch=args.join_batch,
        stabilize_interval=args.stabilize_interval,
        rpc_timeout=args.rpc_timeout,
        state_dir=args.state_dir,
        restart=RestartPolicy(enabled=args.restart),
        trace_spans=args.trace_spans,
    )


# --------------------------------------------------------------------- #
# Admin-socket client (sync; one request, one reply)
# --------------------------------------------------------------------- #


def admin_call(
    state_dir: str, op: str, args: dict[str, Any] | None = None, timeout: float = 300.0
) -> dict[str, Any]:
    """Send one admin request to the running supervisor and await the reply."""
    path = f"{state_dir}/fleet.sock"
    try:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(path)
    except OSError as exc:
        raise FleetError(
            f"no running fleet at {path!r} (start one with `python -m repro.fleet up`): {exc}"
        ) from exc
    try:
        sock.sendall(encode_frame(Request(op=op, req_id=1, args=args or {})))
        stream = sock.makefile("rb")
        line = stream.readline()
    finally:
        sock.close()
    if not line:
        raise FleetError("supervisor closed the admin connection without replying")
    frame = decode_frame(line)
    if not isinstance(frame, Reply):
        raise FleetError(f"unexpected admin frame: {frame!r}")
    if not frame.ok:
        raise FleetError(frame.error)
    return frame.result


# --------------------------------------------------------------------- #
# Supervisor-side replay op (registered by `up`/`smoke`)
# --------------------------------------------------------------------- #


def install_replay_op(supervisor: FleetSupervisor) -> None:
    """Expose `replay` on the admin socket of a running supervisor."""

    async def _admin_replay(args: dict[str, Any]) -> dict[str, Any]:
        workload = str(args.get("workload", "fig9"))
        seed = int(args.get("seed", supervisor.config.seed))
        if workload == "fig9":
            plan = plan_fleet_fig9(
                seed=seed,
                n_nodes=max(len(supervisor.live_idents()), supervisor.config.n_nodes),
                n_slots=int(args.get("slots", 4)),
            )
            members = supervisor.live_idents()
            live = await replay_fig9_live(supervisor, plan)
            sim = run_fig9_sim_twin(
                members, plan, supervisor.space, scheme=supervisor.config.scheme
            )
            report = compare_fig9(live, sim)
            return {"report": json.loads(report.to_json())}
        if workload == "churn":
            plan = plan_fleet_churn(
                str(args.get("scenario", "grid")),
                float(args.get("duration", 120.0)),
                seed,
                supervisor.space,
                supervisor.live_idents(),
            )
            result = await replay_churn_live(
                supervisor, plan, time_scale=float(args.get("time_scale", 0.0))
            )
            expected = plan.final_members()
            return {
                "scenario": plan.scenario,
                "planned": len(plan.actions),
                "applied": len(result.applied),
                "failed": result.failed,
                "converged": result.converged,
                "membership_matches_plan": tuple(result.final_members) == expected,
                "final_members": list(result.final_members),
                "wall_seconds": round(result.wall_seconds, 2),
            }
        raise FleetError(f"unknown workload {workload!r}")

    supervisor.register_admin_op("replay", _admin_replay)


# --------------------------------------------------------------------- #
# Foreground commands
# --------------------------------------------------------------------- #


async def _run_up(config: FleetConfig) -> int:
    supervisor = FleetSupervisor(config)
    install_replay_op(supervisor)
    await supervisor.start()
    await supervisor.serve_admin()
    converged = await supervisor.wait_converged()
    _emit(
        {
            "up": True,
            "n": len(supervisor.live_idents()),
            "converged": converged,
            "admin_socket": str(supervisor.admin_socket_path),
        }
    )
    await supervisor.run_until_signal()
    return 0


async def _run_smoke(config: FleetConfig, slots: int, report_path: str) -> int:
    """The CI smoke: boot, converge, fig9 replay, kill + rejoin, compare.

    With ``--trace-spans`` the smoke additionally merges the per-agent
    span exports (after teardown, so every agent has flushed) into the
    fleet-wide report and requires cross-node ``dat.push`` traces to have
    assembled — the distributed-tracing round trip over real processes.
    """
    supervisor = FleetSupervisor(config)
    try:
        await supervisor.start()
        if not await supervisor.wait_converged():
            _emit({"smoke": "fail", "reason": "fleet did not converge after boot"})
            return 1

        members = supervisor.live_idents()
        plan = plan_fleet_fig9(seed=config.seed, n_nodes=len(members), n_slots=slots)
        live = await replay_fig9_live(supervisor, plan)
        sim = run_fig9_sim_twin(members, plan, supervisor.space, scheme=config.scheme)
        report = compare_fig9(live, sim)

        # Failure injection: SIGKILL a non-root member, then rejoin it and
        # require re-convergence of the surviving+rejoined ring.
        victim = next(i for i in members if i != live.root)
        await supervisor.kill(victim)
        await supervisor.join_agent(victim)
        reconverged = await supervisor.wait_converged()
    finally:
        await supervisor.down()

    payload: dict[str, Any] = {
        "comparison_passed": report.passed,
        "reconverged_after_kill": reconverged,
        "report": json.loads(report.to_json()),
    }
    passed = report.passed and reconverged
    if config.trace_spans:
        fleet_report = build_fleet_report(config.state_dir)
        trace_failures = check_traces(fleet_report, "dat.push")
        payload["fleet_report"] = fleet_report
        payload["trace_failures"] = trace_failures
        passed = passed and not trace_failures
    if report_path:
        with open(report_path, "w", encoding="utf-8") as fh:
            fh.write(report.to_json())
    payload["smoke"] = "pass" if passed else "fail"
    _emit(payload)
    return 0 if passed else 1


def _emit(payload: dict[str, Any]) -> None:
    sys.stdout.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "up":
            return asyncio.run(_run_up(config_from_args(args)))
        if args.command == "smoke":
            return asyncio.run(
                _run_smoke(config_from_args(args), args.slots, args.report)
            )
        if args.command == "status":
            _emit(admin_call(args.state_dir, "status"))
        elif args.command == "join":
            _emit(admin_call(args.state_dir, "join", {"ident": args.ident}))
        elif args.command == "leave":
            _emit(admin_call(args.state_dir, "leave", {"ident": args.ident}))
        elif args.command == "kill":
            _emit(admin_call(args.state_dir, "kill", {"ident": args.ident}))
        elif args.command == "route":
            _emit(admin_call(args.state_dir, "route", {"key": args.key, "origin": args.origin}))
        elif args.command == "replay":
            _emit(
                admin_call(
                    args.state_dir,
                    "replay",
                    {
                        "workload": args.workload,
                        "seed": args.seed,
                        "slots": args.slots,
                        "scenario": args.scenario,
                        "duration": args.duration,
                        "time_scale": args.time_scale,
                    },
                )
            )
        elif args.command == "report":
            try:
                fleet_report = build_fleet_report(args.state_dir)
            except FileNotFoundError as exc:
                raise FleetError(str(exc)) from exc
            if not fleet_report["agents"]:
                raise FleetError(
                    f"no telemetry-*.jsonl streams in {args.state_dir}"
                )
            if args.json:
                _emit(fleet_report)
            else:
                sys.stdout.write(render_fleet_report(fleet_report))
            if args.require_traces:
                failures = check_traces(fleet_report, args.require_traces)
                for failure in failures:
                    sys.stderr.write(f"CHECK FAIL: {failure}\n")
                if failures:
                    return 1
        elif args.command == "down":
            _emit(admin_call(args.state_dir, "down"))
    except FleetError as exc:
        sys.stderr.write(f"error: {exc}\n")
        return 2
    return 0

"""Fleet-wide telemetry aggregation: one report from a state directory.

A fleet run leaves per-agent artifacts under ``state_dir``:

* ``telemetry-<ident>.jsonl`` — the control-plane telemetry stream (one
  ``{"event": "telemetry", "data": {...}}`` frame per sampling interval)
  the supervisor persisted for each agent;
* ``spans-<ident>.jsonl`` — each agent's span export, present when the
  fleet ran with tracing (``FleetConfig.trace_spans`` /
  ``--trace-spans``);
* ``clock-offsets.json`` — the per-agent clock offsets the supervisor
  estimated from each ``Hello`` handshake.

This module merges all three into a single fleet-wide view: per-agent
activity rollups from the telemetry streams, and cross-node causal traces
assembled from the span exports after shifting every file onto the
supervisor timeline. It is deliberately offline — it only reads files, so
it works on a live fleet's state dir, after teardown, and on artifacts
copied off a CI runner alike.

CLI::

    python -m repro.fleet.report .fleet            # human-readable
    python -m repro.fleet.report .fleet --json     # machine-readable
    python -m repro.fleet.report .fleet --require-traces dat.push

(also reachable as ``python -m repro.fleet report``).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Any, Sequence

from repro.telemetry.traces import TraceSet, assemble_files

__all__ = [
    "agent_rollups",
    "fleet_trace_set",
    "build_fleet_report",
    "render_fleet_report",
    "main",
]

_TELEMETRY_RE = re.compile(r"telemetry-(\d+)\.jsonl$")
_SPANS_RE = re.compile(r"spans-(\d+)\.jsonl$")


def _read_jsonl(path: Path) -> list[dict[str, Any]]:
    """Best-effort JSONL records (a killed agent may truncate mid-line)."""
    records: list[dict[str, Any]] = []
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


def agent_rollups(state_dir: Path) -> dict[str, dict[str, Any]]:
    """Per-agent activity summary from the persisted telemetry streams."""
    rollups: dict[str, dict[str, Any]] = {}
    for path in sorted(state_dir.glob("telemetry-*.jsonl")):
        match = _TELEMETRY_RE.search(path.name)
        if match is None:
            continue
        ident = match.group(1)
        samples = [
            record["data"]
            for record in _read_jsonl(path)
            if record.get("event") == "telemetry"
            and isinstance(record.get("data"), dict)
        ]
        if not samples:
            rollups[ident] = {"samples": 0}
            continue
        last = samples[-1]
        pushes = last.get("pushes") or {}
        rollups[ident] = {
            "samples": len(samples),
            "last_t": last.get("t"),
            "sent": last.get("sent"),
            "received": last.get("received"),
            "fingers_filled": last.get("fingers_filled"),
            "pushes": sum(int(v) for v in pushes.values()) if pushes else 0,
            "estimates": last.get("estimates") or {},
        }
    return rollups


def clock_offsets(state_dir: Path) -> dict[str, float]:
    """The supervisor's per-agent clock offsets (empty if never written)."""
    path = state_dir / "clock-offsets.json"
    if not path.is_file():
        return {}
    try:
        with path.open("r", encoding="utf-8") as handle:
            raw = json.load(handle)
    except ValueError:
        return {}
    return {str(k): float(v) for k, v in raw.items()}


def fleet_trace_set(state_dir: Path) -> TraceSet | None:
    """Assemble cross-node traces from every agent's span export.

    Returns ``None`` when the fleet ran without tracing (no span files).
    Each file's timestamps are shifted by its agent's clock offset so
    parent/child spans from different processes land on one timeline.
    """
    span_files = sorted(
        p for p in state_dir.glob("spans-*.jsonl") if _SPANS_RE.search(p.name)
    )
    if not span_files:
        return None
    return assemble_files(span_files, offsets=clock_offsets(state_dir))


def build_fleet_report(state_dir: Path | str) -> dict[str, Any]:
    """The merged fleet report as a JSON-safe dict."""
    state_dir = Path(state_dir)
    if not state_dir.is_dir():
        raise FileNotFoundError(f"{state_dir}: no such fleet state directory")
    agents = agent_rollups(state_dir)
    report: dict[str, Any] = {
        "state_dir": str(state_dir),
        "agents": agents,
        "n_agents": len(agents),
        "total_pushes": sum(
            int(a.get("pushes", 0)) for a in agents.values()
        ),
    }
    traces = fleet_trace_set(state_dir)
    if traces is None:
        report["traces"] = None
        return report
    roots: dict[str, dict[str, Any]] = {}
    for name in sorted({t.root.name for t in traces.traces if not t.orphaned}):
        group = traces.rooted(name)
        cps = [t.critical_path_latency() for t in group]
        roots[name] = {
            "count": len(group),
            "max_depth": max(t.depth() for t in group),
            "max_hops": max(t.hops() for t in group),
            "mean_critical_path": sum(cps) / len(cps),
            "cross_node": sum(1 for t in group if len(t.nodes()) > 1),
        }
    report["traces"] = {
        "spans": traces.total_spans,
        "traces": len(traces.traces),
        "orphans": len(traces.orphans()),
        "duplicates": traces.duplicates,
        "offsets": clock_offsets(state_dir),
        "roots": roots,
    }
    return report


def render_fleet_report(report: dict[str, Any]) -> str:
    """Human-readable rendering of :func:`build_fleet_report`'s dict."""
    lines = [
        f"fleet report: {report['state_dir']} — {report['n_agents']} agents, "
        f"{report['total_pushes']} pushes",
    ]
    for ident in sorted(report["agents"], key=int):
        agent = report["agents"][ident]
        if not agent.get("samples"):
            lines.append(f"  agent {ident}: no telemetry samples")
            continue
        lines.append(
            f"  agent {ident}: samples={agent['samples']} "
            f"t={agent.get('last_t')} sent={agent.get('sent')} "
            f"recv={agent.get('received')} pushes={agent.get('pushes')}"
        )
    traces = report.get("traces")
    if traces is None:
        lines.append("traces: none (fleet ran without --trace-spans)")
        return "\n".join(lines) + "\n"
    lines.append(
        f"traces: {traces['traces']} assembled from {traces['spans']} spans "
        f"({traces['orphans']} orphaned, {traces['duplicates']} duplicate ids, "
        f"{len(traces['offsets'])} aligned clocks)"
    )
    for name, stats in traces["roots"].items():
        lines.append(
            f"  {name}: count={stats['count']} depth<={stats['max_depth']} "
            f"hops<={stats['max_hops']} cross_node={stats['cross_node']} "
            f"mean_cp={stats['mean_critical_path']:.6f}"
        )
    return "\n".join(lines) + "\n"


def check_traces(report: dict[str, Any], require_root: str) -> list[str]:
    """Validation for the CI smoke: returns failure messages (empty = ok).

    Requires traced spans to exist, at least one trace rooted at
    ``require_root`` to span more than one node (context really crossed a
    process boundary), and orphans to stay a minority (parent resolution
    worked across the merged per-node files).
    """
    failures: list[str] = []
    traces = report.get("traces")
    if not traces:
        return [f"no span exports in {report['state_dir']}"]
    stats = traces["roots"].get(require_root)
    if stats is None or stats["count"] == 0:
        failures.append(f"no traces rooted at {require_root!r}")
    elif stats["cross_node"] == 0:
        failures.append(
            f"no {require_root!r} trace crossed a process boundary"
        )
    if traces["orphans"] > traces["traces"] / 2:
        failures.append(
            f"{traces['orphans']}/{traces['traces']} traces orphaned — "
            "parent spans missing from the merged fleet files"
        )
    return failures


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet.report",
        description="Merge a fleet state dir into one fleet-wide report.",
    )
    parser.add_argument("state_dir", help="fleet state directory (e.g. .fleet)")
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    parser.add_argument(
        "--require-traces",
        metavar="ROOT",
        help="exit 1 unless cross-node traces rooted at ROOT assembled cleanly",
    )
    args = parser.parse_args(argv)
    try:
        report = build_fleet_report(args.state_dir)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not report["agents"]:
        print(
            f"error: no telemetry-*.jsonl streams in {args.state_dir}",
            file=sys.stderr,
        )
        return 2
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_fleet_report(report), end="")
    if args.require_traces:
        failures = check_traces(report, args.require_traces)
        for failure in failures:
            print(f"CHECK FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"check ok: cross-node {args.require_traces!r} traces assembled")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke
    raise SystemExit(main())

"""Real multi-process deployment harness for the DAT reproduction.

The simulator (:mod:`repro.sim`) answers "does the algorithm scale" in
virtual time; this package answers "does the *implementation* behave the
same when every node is a real OS process exchanging real UDP datagrams".
It has four layers:

* :mod:`repro.fleet.agent` — the per-process node entrypoint
  (``python -m repro.fleet.agent``): a UDP-transport-backed Chord/DAT
  stack plus a TCP control surface (join, graceful leave, status,
  per-request route display, workload ops).
* :mod:`repro.fleet.supervisor` — the asyncio
  :class:`~repro.fleet.supervisor.FleetSupervisor`: spawns and monitors
  agents, assigns probing identifiers, bootstraps the ring in stages,
  injects SIGKILL failures with restart policies, and persists per-node
  telemetry JSONL.
* :mod:`repro.fleet.plan` / :mod:`repro.fleet.replay` — deterministic
  workload replay: the same ``(seed, scenario)`` that drives the
  simulator is resolved into concrete live-fleet actions.
* :mod:`repro.fleet.compare` — the cross-validation report: the same
  workload is run on the discrete-event simulator and the live fleet,
  and message counts, load imbalance, and aggregation accuracy are
  checked against documented tolerances.

``python -m repro.fleet`` is the operator CLI (``up`` / ``status`` /
``join`` / ``leave`` / ``kill`` / ``route`` / ``replay`` / ``smoke`` /
``down``). See ``docs/FLEET.md`` for the architecture tour.
"""

from __future__ import annotations

from repro.fleet.agent import AgentOptions, FleetAgent
from repro.fleet.compare import FleetComparisonReport
from repro.fleet.plan import ChurnReplayPlan, Fig9ReplayPlan, plan_fleet_churn
from repro.fleet.replay import replay_churn_live, replay_fig9_live
from repro.fleet.supervisor import AgentHandle, FleetConfig, FleetSupervisor, RestartPolicy
from repro.fleet.wire import Event, Frame, Hello, Reply, Request, decode_frame, encode_frame

__all__ = [
    "AgentHandle",
    "AgentOptions",
    "ChurnReplayPlan",
    "Event",
    "Fig9ReplayPlan",
    "FleetAgent",
    "FleetComparisonReport",
    "FleetConfig",
    "FleetSupervisor",
    "Frame",
    "Hello",
    "Reply",
    "Request",
    "RestartPolicy",
    "decode_frame",
    "encode_frame",
    "plan_fleet_churn",
    "replay_churn_live",
    "replay_fig9_live",
]

"""Cross-validate a live fleet run against the simulator, same seed.

The paper's prototype claim (Sec. 5.1) is that the RPC-based deployment
and the simulator "indeed have the consistent results for the metrics we
measured". This module operationalizes that claim for the fleet harness:

1. :func:`run_fig9_sim_twin` re-runs the *exact* live workload — same
   membership, same seeded traces, same key/root/aggregate/push
   interval — on the discrete-event :class:`~repro.sim.simnet.
   SimTransport` in virtual time, through the very same
   :class:`~repro.core.service.DatNodeService` code the agents run.
2. :func:`compare_fig9` holds the live series and traffic against the
   twin and emits a :class:`FleetComparisonReport` with named checks.

Documented tolerances (see ``docs/FLEET.md`` for the rationale):

* **accuracy** — live per-slot relative error vs ground truth, after a
  one-slot warm-up, must stay within ``accuracy_tol`` (default 10%; the
  sim twin is exact for identical traces, while live staleness is tree
  depth x push interval plus real scheduling jitter — on a loaded
  single-core host, timer drift can hold one child's contribution a
  round behind at sampling time).
* **pushes** — live total pushes / sim total pushes must land in
  ``[push_ratio_low, push_ratio_high]`` (default 0.5–2.0x; wall-clock
  timers on a loaded host drift where virtual time does not).
* **imbalance** — live max/mean message load may exceed the sim twin's by
  at most ``imbalance_factor`` (default 2.0x; the skew *shape* — the root
  and its children carrying the most — must match, the exact ratio is
  scheduling-sensitive).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.chord.idspace import IdSpace
from repro.chord.ring import StaticRing
from repro.core.service import DatNodeService, StandaloneDatHost
from repro.fleet.plan import Fig9ReplayPlan
from repro.fleet.replay import Fig9LiveResult
from repro.gma.traces import TraceGenerator
from repro.sim.latency import ConstantLatency
from repro.sim.simnet import SimTransport

__all__ = [
    "Fig9SimResult",
    "FleetComparisonReport",
    "run_fig9_sim_twin",
    "compare_fig9",
]


@dataclass
class Fig9SimResult:
    """The simulator twin's per-slot series and traffic accounting."""

    root: int = 0
    key: int = 0
    actual: list[float] = field(default_factory=list)
    aggregated: list[float] = field(default_factory=list)
    total_pushes: int = 0
    total_messages: int = 0
    imbalance: float = 0.0


@dataclass(frozen=True)
class CheckResult:
    """One named pass/fail comparison with its evidence."""

    name: str
    ok: bool
    detail: str


@dataclass
class FleetComparisonReport:
    """Live-vs-simulator verdict for one replayed workload."""

    n_nodes: int
    n_slots: int
    seed: int
    checks: list[CheckResult] = field(default_factory=list)
    live_metrics: dict[str, Any] = field(default_factory=dict)
    sim_metrics: dict[str, Any] = field(default_factory=dict)
    tolerances: dict[str, float] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return all(check.ok for check in self.checks)

    def to_json(self) -> str:
        return json.dumps(
            {
                "passed": self.passed,
                "n_nodes": self.n_nodes,
                "n_slots": self.n_slots,
                "seed": self.seed,
                "checks": [
                    {"name": c.name, "ok": c.ok, "detail": c.detail} for c in self.checks
                ],
                "live": self.live_metrics,
                "sim": self.sim_metrics,
                "tolerances": self.tolerances,
            },
            indent=2,
            sort_keys=True,
        )

    def render_text(self) -> str:
        lines = [
            f"fleet comparison: n={self.n_nodes} slots={self.n_slots} seed={self.seed}",
            f"verdict: {'PASS' if self.passed else 'FAIL'}",
        ]
        for check in self.checks:
            lines.append(f"  [{'ok' if check.ok else 'FAIL'}] {check.name}: {check.detail}")
        return "\n".join(lines)


def run_fig9_sim_twin(
    members: Sequence[int],
    plan: Fig9ReplayPlan,
    space: IdSpace,
    scheme: str = "balanced",
) -> Fig9SimResult:
    """Replay the live fig-9 workload on the DES transport, virtual time.

    Uses converged finger tables over the live membership (a settled fleet
    has the same), the identical seeded traces at the identical sorted-ring
    positions, and the same service layer — so the only degrees of freedom
    left when comparing are the substrates themselves.
    """
    ring = StaticRing.from_sorted_ids(space, sorted(int(m) for m in members))
    tables = ring.all_finger_tables()
    traces = TraceGenerator(seed=plan.seed).generate_fleet(
        plan.n_nodes, identical=plan.identical_traces
    )
    if len(ring.nodes) > len(traces):
        raise ValueError(
            f"membership of {len(ring.nodes)} exceeds the trace fleet of {len(traces)}"
        )
    cursor = {"slot": 0}
    sim = SimTransport(latency=ConstantLatency(0.001))
    services: dict[int, DatNodeService] = {}
    for index, node in enumerate(ring):
        host = StandaloneDatHost(node, space, sim)
        services[node] = DatNodeService(
            host,
            finger_provider=lambda node=node: tables[node],
            value_provider=lambda index=index: traces[index].at_slot(cursor["slot"]),
            scheme=scheme,
            d0_provider=lambda: space.size / len(ring.nodes),
            predecessor_provider=lambda node=node: ring.predecessor_of_node(node),
        )
    key = plan.key(space)
    root = ring.successor(key)
    result = Fig9SimResult(root=root, key=key)
    n_slots = min(plan.n_slots, traces[0].n_slots)
    for service in services.values():
        service.start_continuous(key, root, plan.aggregate, interval=plan.push_interval)
    now = 0.0
    for slot in range(n_slots):
        cursor["slot"] = slot
        now += plan.slot_duration
        sim.run(until=now)
        truth = sum(traces[index].at_slot(slot) for index in range(len(ring.nodes)))
        if plan.aggregate == "avg":
            truth /= len(ring.nodes)
        estimate = services[root].root_estimate(key)
        result.actual.append(float(truth))
        result.aggregated.append(float(estimate) if estimate is not None else 0.0)
    for service in services.values():
        # Count before stopping: stop_continuous discards the per-key state.
        result.total_pushes += sum(
            state.pushes_sent for state in service._continuous.values()
        )
        service.stop_continuous(key)
        service.close()
    sim.run(until=now + 1.0)  # drain cancelled-timer residue deterministically
    result.total_messages = sim.stats.total_messages()
    result.imbalance = float(sim.stats.imbalance())
    return result


def _relative_errors(actual: Sequence[float], estimated: Sequence[float]) -> list[float]:
    errors = []
    for truth, estimate in zip(actual, estimated):
        scale = abs(truth) if abs(truth) > 1e-12 else 1.0
        errors.append(abs(estimate - truth) / scale)
    return errors


def compare_fig9(
    live: Fig9LiveResult,
    sim: Fig9SimResult,
    accuracy_tol: float = 0.1,
    push_ratio_low: float = 0.5,
    push_ratio_high: float = 2.0,
    imbalance_factor: float = 2.0,
    warmup_slots: int = 1,
) -> FleetComparisonReport:
    """Hold the live run against its simulator twin, check by check."""
    plan = live.plan
    report = FleetComparisonReport(
        n_nodes=plan.n_nodes,
        n_slots=len(live.aggregated),
        seed=plan.seed,
        tolerances={
            "accuracy_tol": accuracy_tol,
            "push_ratio_low": push_ratio_low,
            "push_ratio_high": push_ratio_high,
            "imbalance_factor": imbalance_factor,
        },
    )
    warmup = min(warmup_slots, max(len(live.aggregated) - 1, 0))
    live_errors = _relative_errors(live.actual, live.aggregated)[warmup:]
    sim_errors = _relative_errors(sim.actual, sim.aggregated)[warmup:]
    live_max_err = max(live_errors) if live_errors else float("inf")
    sim_max_err = max(sim_errors) if sim_errors else float("inf")
    live_imbalance = live.imbalance()

    report.live_metrics = {
        "max_relative_error": live_max_err,
        "total_pushes": live.total_pushes,
        "total_messages": live.total_messages(),
        "imbalance": live_imbalance,
        "wall_seconds": round(live.wall_seconds, 2),
        "root": live.root,
    }
    report.sim_metrics = {
        "max_relative_error": sim_max_err,
        "total_pushes": sim.total_pushes,
        "total_messages": sim.total_messages,
        "imbalance": sim.imbalance,
        "root": sim.root,
    }

    report.checks.append(
        CheckResult(
            "same_root",
            live.root == sim.root and live.key == sim.key,
            f"live root {live.root} vs sim root {sim.root} for key {live.key}",
        )
    )
    report.checks.append(
        CheckResult(
            "live_accuracy",
            live_max_err <= accuracy_tol,
            f"live max relative error {live_max_err:.4f} (tol {accuracy_tol})",
        )
    )
    report.checks.append(
        CheckResult(
            "sim_accuracy",
            sim_max_err <= accuracy_tol,
            f"sim max relative error {sim_max_err:.4f} (tol {accuracy_tol})",
        )
    )
    push_ratio = live.total_pushes / sim.total_pushes if sim.total_pushes else float("inf")
    report.checks.append(
        CheckResult(
            "push_volume",
            push_ratio_low <= push_ratio <= push_ratio_high,
            f"live/sim push ratio {push_ratio:.2f} "
            f"(live {live.total_pushes}, sim {sim.total_pushes}, "
            f"window [{push_ratio_low}, {push_ratio_high}])",
        )
    )
    imbalance_ok = (
        live_imbalance <= imbalance_factor * sim.imbalance if sim.imbalance > 0 else True
    )
    report.checks.append(
        CheckResult(
            "load_imbalance",
            imbalance_ok,
            f"live imbalance {live_imbalance:.2f} vs sim {sim.imbalance:.2f} "
            f"(factor <= {imbalance_factor})",
        )
    )
    return report

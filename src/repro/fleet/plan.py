"""Pure planning for live-fleet workload replay.

Everything here is deterministic data-in/data-out — no sockets, no
processes, no clocks — so a plan can be unit-tested, diffed against the
simulator's plan for the same seed, and only then handed to
:mod:`repro.fleet.replay` for execution against real processes.

The determinism contract: churn identity resolution is delegated to
:func:`repro.workloads.churn.plan_churn` — the *same* planner
:func:`~repro.workloads.churn.replay_churn` uses in-sim — so one
``(seed, scenario)`` pair yields byte-identical event sequences on both
substrates. That is what makes the :mod:`repro.fleet.compare` report
meaningful: any divergence is implementation behaviour, not workload
noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.chord.hashing import sha1_id
from repro.chord.idspace import IdSpace
from repro.workloads.churn import ChurnKind, plan_churn
from repro.workloads.scenarios import scenario

__all__ = [
    "FleetAction",
    "ChurnReplayPlan",
    "Fig9ReplayPlan",
    "plan_fleet_churn",
    "plan_fleet_fig9",
]

#: How each churn kind maps onto a fleet operation: graceful departures go
#: through the agent's ``leave`` op; crashes are SIGKILLs from the
#: supervisor (no goodbye on either plane).
_KIND_TO_OP = {
    ChurnKind.JOIN: "join",
    ChurnKind.LEAVE: "leave",
    ChurnKind.CRASH: "kill",
}


@dataclass(frozen=True)
class FleetAction:
    """One scheduled supervision action against the live fleet."""

    time: float
    op: str  # "join" | "leave" | "kill"
    ident: int


@dataclass(frozen=True)
class ChurnReplayPlan:
    """A fully resolved churn schedule ready for live replay."""

    scenario: str
    duration: float
    seed: int
    min_nodes: int
    initial_members: tuple[int, ...]
    actions: tuple[FleetAction, ...]

    def final_members(self) -> tuple[int, ...]:
        """Membership after every action applies (sorted)."""
        members = set(self.initial_members)
        for action in self.actions:
            if action.op == "join":
                members.add(action.ident)
            else:
                members.discard(action.ident)
        return tuple(sorted(members))


@dataclass(frozen=True)
class Fig9ReplayPlan:
    """A live rendition of the Fig. 9 accuracy experiment.

    The same trace fleet the simulator derives from ``(seed, n_nodes)`` is
    regenerated inside every agent (see the agent's ``load_trace`` op);
    ``slot_duration`` is the *wall-clock* dwell per trace slot, chosen so a
    continuous push round (``push_interval``) completes several times per
    slot before the root estimate is sampled.
    """

    seed: int
    n_nodes: int
    n_slots: int
    aggregate: str = "sum"
    attribute: str = "cpu-usage"
    identical_traces: bool = True
    push_interval: float = 0.25
    slot_duration: float = 2.0

    def key(self, space: IdSpace) -> int:
        """The aggregation key: the attribute name hashed into the ring."""
        return sha1_id(self.attribute, space)


def plan_fleet_churn(
    scenario_name: str,
    duration: float,
    seed: int,
    space: IdSpace,
    initial_members: Sequence[int],
    min_nodes: int = 2,
) -> ChurnReplayPlan:
    """Resolve a named scenario's churn schedule onto concrete fleet actions.

    The schedule comes from :meth:`~repro.workloads.scenarios.Scenario.
    churn_workload` and identity resolution from :func:`plan_churn` — both
    seeded — so calling this twice (or once here and once in the
    simulator) yields the identical action sequence.
    """
    workload = scenario(scenario_name).churn_workload(duration, seed=seed)
    events = workload.generate()
    planned = plan_churn(events, space, initial_members, seed=seed, min_nodes=min_nodes)
    actions = tuple(
        FleetAction(time=p.time, op=_KIND_TO_OP[p.kind], ident=p.ident) for p in planned
    )
    return ChurnReplayPlan(
        scenario=scenario_name,
        duration=float(duration),
        seed=int(seed),
        min_nodes=min_nodes,
        initial_members=tuple(sorted(int(m) for m in initial_members)),
        actions=actions,
    )


def plan_fleet_fig9(
    seed: int,
    n_nodes: int,
    n_slots: int = 8,
    aggregate: str = "sum",
    push_interval: float = 0.25,
    slot_duration: float = 2.0,
) -> Fig9ReplayPlan:
    """Parameterize a live Fig. 9 run (defaults sized for smoke tests)."""
    if n_slots < 1:
        raise ValueError(f"n_slots must be >= 1, got {n_slots}")
    return Fig9ReplayPlan(
        seed=int(seed),
        n_nodes=int(n_nodes),
        n_slots=int(n_slots),
        aggregate=aggregate,
        push_interval=float(push_interval),
        slot_duration=float(slot_duration),
    )

"""Churn workloads: Poisson node arrivals and departures.

The paper credits DAT with "very low overhead during node arrival and
departure" because trees are implicit in Chord state. The churn benchmark
replays these schedules against a live protocol overlay and measures the
maintenance traffic and tree-repair latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro import telemetry
from repro.util.rng import ensure_rng
from repro.util.validation import check_non_negative, check_positive

if TYPE_CHECKING:
    from repro.chord.idspace import IdSpace
    from repro.chord.incremental import DatUpdateEngine, DatUpdateReport

__all__ = [
    "ChurnKind",
    "ChurnEvent",
    "ChurnWorkload",
    "PlannedChurnEvent",
    "plan_churn",
    "replay_churn",
]


class ChurnKind(str, Enum):
    """What happens to the node."""

    JOIN = "join"
    LEAVE = "leave"  # graceful departure
    CRASH = "crash"  # fail-stop


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change at a point in (virtual) time."""

    time: float
    kind: ChurnKind


class ChurnWorkload:
    """A Poisson schedule of joins/leaves/crashes over a time horizon.

    Parameters
    ----------
    duration:
        Horizon in seconds.
    join_rate, leave_rate:
        Expected events per second of each kind.
    crash_fraction:
        Fraction of departures that are crashes instead of graceful leaves.
    seed:
        Reproducibility seed.
    """

    def __init__(
        self,
        duration: float,
        join_rate: float = 0.1,
        leave_rate: float = 0.1,
        crash_fraction: float = 0.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        check_positive("duration", duration)
        check_non_negative("join_rate", join_rate)
        check_non_negative("leave_rate", leave_rate)
        if not 0.0 <= crash_fraction <= 1.0:
            raise ValueError(f"crash_fraction must be in [0, 1], got {crash_fraction}")
        self.duration = float(duration)
        self.join_rate = float(join_rate)
        self.leave_rate = float(leave_rate)
        self.crash_fraction = float(crash_fraction)
        self._rng = ensure_rng(seed)

    def _poisson_times(self, rate: float) -> list[float]:
        if rate <= 0:
            return []
        times: list[float] = []
        t = 0.0
        while True:
            t += float(self._rng.exponential(1.0 / rate))
            if t >= self.duration:
                return times
            times.append(t)

    def generate(self) -> list[ChurnEvent]:
        """The full event schedule, time-ordered."""
        events = [ChurnEvent(t, ChurnKind.JOIN) for t in self._poisson_times(self.join_rate)]
        for t in self._poisson_times(self.leave_rate):
            kind = (
                ChurnKind.CRASH
                if self._rng.random() < self.crash_fraction
                else ChurnKind.LEAVE
            )
            events.append(ChurnEvent(t, kind))
        events.sort(key=lambda e: e.time)
        return events

    def expected_events(self) -> float:
        """Expected total membership changes over the horizon."""
        return (self.join_rate + self.leave_rate) * self.duration


@dataclass(frozen=True)
class PlannedChurnEvent:
    """One membership change resolved onto a concrete identity."""

    time: float
    kind: ChurnKind
    ident: int


def plan_churn(
    events: Iterable[ChurnEvent],
    space: IdSpace,
    initial_members: Sequence[int],
    seed: int | np.random.Generator | None = None,
    min_nodes: int = 2,
) -> list[PlannedChurnEvent]:
    """Resolve a kind-only churn schedule onto concrete identities — purely.

    :class:`ChurnEvent` carries only a kind; resolving *who* joins or
    departs needs the evolving membership, which this planner simulates as
    a plain sorted set: joins pick an unused random identifier, departures
    a random current member (indexed into the sorted membership), and
    departures that would shrink the ring below ``min_nodes`` are dropped
    without consuming randomness. The RNG consumption is exactly the
    sequence :func:`replay_churn` historically performed against the live
    engine ring, so the same ``(seed, schedule)`` produces the identical
    event sequence whether it is applied in-sim (``replay_churn``) or
    shipped to a real process fleet (:mod:`repro.fleet.replay`) — the
    cross-substrate determinism contract the fleet comparison report
    relies on.
    """
    rng = ensure_rng(seed)
    members: list[int] | None = sorted(int(m) for m in initial_members)
    member_set = set(members)
    plan: list[PlannedChurnEvent] = []
    for event in events:
        if event.kind is ChurnKind.JOIN:
            candidate = int(rng.integers(0, space.size))
            while candidate in member_set:
                candidate = int(rng.integers(0, space.size))
            plan.append(PlannedChurnEvent(event.time, event.kind, candidate))
            member_set.add(candidate)
            members = None  # sorted view invalidated lazily
        else:
            if len(member_set) <= min_nodes:
                continue
            if members is None:
                members = sorted(member_set)
            victim = members[int(rng.integers(0, len(members)))]
            plan.append(PlannedChurnEvent(event.time, event.kind, victim))
            member_set.discard(victim)
            members = None
    return plan


def replay_churn(
    engine: DatUpdateEngine,
    events: Iterable[ChurnEvent],
    seed: int | np.random.Generator | None = None,
    min_nodes: int = 2,
) -> list[DatUpdateReport]:
    """Replay a churn schedule against an incremental maintenance engine.

    Identity resolution is delegated to :func:`plan_churn` (same seed, same
    sequence), then each planned event is applied through
    :meth:`~repro.chord.incremental.DatUpdateEngine.apply`, so the engine's
    ring, finger state, and every tracked tree stay current at O(log n)
    expected cost per event. Departures that would shrink the ring below
    ``min_nodes`` are skipped, mirroring the live-overlay experiments.

    Returns the per-event :class:`~repro.chord.incremental.DatUpdateReport`
    list (one entry per event actually applied).
    """
    schedule = list(events)
    plan = plan_churn(
        schedule,
        engine.ring.space,
        engine.ring.nodes,
        seed=seed,
        min_nodes=min_nodes,
    )
    reports: list[DatUpdateReport] = []
    with telemetry.span("churn.replay", min_nodes=min_nodes) as sp:
        for planned in plan:
            reports.append(engine.apply(planned.kind.value, planned.ident))
        if sp is not telemetry.NULL_SPAN:
            sp.set(applied=len(reports), skipped=len(schedule) - len(plan))
    return reports

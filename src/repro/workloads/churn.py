"""Churn workloads: Poisson node arrivals and departures.

The paper credits DAT with "very low overhead during node arrival and
departure" because trees are implicit in Chord state. The churn benchmark
replays these schedules against a live protocol overlay and measures the
maintenance traffic and tree-repair latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro import telemetry
from repro.util.rng import ensure_rng
from repro.util.validation import check_non_negative, check_positive

if TYPE_CHECKING:
    from repro.chord.incremental import DatUpdateEngine, DatUpdateReport

__all__ = ["ChurnKind", "ChurnEvent", "ChurnWorkload", "replay_churn"]


class ChurnKind(str, Enum):
    """What happens to the node."""

    JOIN = "join"
    LEAVE = "leave"  # graceful departure
    CRASH = "crash"  # fail-stop


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change at a point in (virtual) time."""

    time: float
    kind: ChurnKind


class ChurnWorkload:
    """A Poisson schedule of joins/leaves/crashes over a time horizon.

    Parameters
    ----------
    duration:
        Horizon in seconds.
    join_rate, leave_rate:
        Expected events per second of each kind.
    crash_fraction:
        Fraction of departures that are crashes instead of graceful leaves.
    seed:
        Reproducibility seed.
    """

    def __init__(
        self,
        duration: float,
        join_rate: float = 0.1,
        leave_rate: float = 0.1,
        crash_fraction: float = 0.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        check_positive("duration", duration)
        check_non_negative("join_rate", join_rate)
        check_non_negative("leave_rate", leave_rate)
        if not 0.0 <= crash_fraction <= 1.0:
            raise ValueError(f"crash_fraction must be in [0, 1], got {crash_fraction}")
        self.duration = float(duration)
        self.join_rate = float(join_rate)
        self.leave_rate = float(leave_rate)
        self.crash_fraction = float(crash_fraction)
        self._rng = ensure_rng(seed)

    def _poisson_times(self, rate: float) -> list[float]:
        if rate <= 0:
            return []
        times: list[float] = []
        t = 0.0
        while True:
            t += float(self._rng.exponential(1.0 / rate))
            if t >= self.duration:
                return times
            times.append(t)

    def generate(self) -> list[ChurnEvent]:
        """The full event schedule, time-ordered."""
        events = [ChurnEvent(t, ChurnKind.JOIN) for t in self._poisson_times(self.join_rate)]
        for t in self._poisson_times(self.leave_rate):
            kind = (
                ChurnKind.CRASH
                if self._rng.random() < self.crash_fraction
                else ChurnKind.LEAVE
            )
            events.append(ChurnEvent(t, kind))
        events.sort(key=lambda e: e.time)
        return events

    def expected_events(self) -> float:
        """Expected total membership changes over the horizon."""
        return (self.join_rate + self.leave_rate) * self.duration


def replay_churn(
    engine: DatUpdateEngine,
    events: Iterable[ChurnEvent],
    seed: int | np.random.Generator | None = None,
    min_nodes: int = 2,
) -> list[DatUpdateReport]:
    """Replay a churn schedule against an incremental maintenance engine.

    :class:`ChurnEvent` carries only a kind — this resolves each event onto
    a concrete identity (joins pick an unused random identifier, departures
    a random current member) and applies it through
    :meth:`~repro.chord.incremental.DatUpdateEngine.apply`, so the engine's
    ring, finger state, and every tracked tree stay current at O(log n)
    expected cost per event. Departures that would shrink the ring below
    ``min_nodes`` are skipped, mirroring the live-overlay experiments.

    Returns the per-event :class:`~repro.chord.incremental.DatUpdateReport`
    list (one entry per event actually applied).
    """
    rng = ensure_rng(seed)
    reports: list[DatUpdateReport] = []
    skipped = 0
    with telemetry.span("churn.replay", min_nodes=min_nodes) as sp:
        for event in events:
            ring = engine.ring
            kind = event.kind.value
            if event.kind is ChurnKind.JOIN:
                candidate = int(rng.integers(0, ring.space.size))
                while candidate in ring:
                    candidate = int(rng.integers(0, ring.space.size))
                reports.append(engine.apply(kind, candidate))
            else:
                if len(ring) <= min_nodes:
                    skipped += 1
                    continue
                nodes = ring.nodes
                victim = nodes[int(rng.integers(0, len(nodes)))]
                reports.append(engine.apply(kind, victim))
        if sp is not telemetry.NULL_SPAN:
            sp.set(applied=len(reports), skipped=skipped)
    return reports

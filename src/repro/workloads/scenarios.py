"""Named deployment scenarios used by examples and exploratory runs.

Each scenario bundles the knobs a realistic deployment implies — overlay
size, identifier strategy, trace character, churn level — so experiments
can say ``scenario("planetlab")`` instead of repeating parameter blocks.
Scales follow the paper's motivating numbers (Sec. 1): PlanetLab at ~700
machines, a "planet-scale Grid" at tens of thousands of CPUs, and a
SETI@home-like volunteer swarm with heavy churn.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gma.monitor import MonitorConfig
from repro.gma.traces import TraceGenerator
from repro.workloads.churn import ChurnWorkload

__all__ = ["Scenario", "scenario", "available_scenarios"]


@dataclass(frozen=True)
class Scenario:
    """One named deployment profile."""

    name: str
    description: str
    monitor: MonitorConfig
    #: membership changes per hour per 100 nodes (drives churn workloads).
    churn_per_hour_per_100: float
    #: trace volatility: AR noise scale in utilization points.
    trace_noise: float

    def trace_generator(self, seed: int | None = None) -> TraceGenerator:
        """A trace generator matched to this scenario's volatility."""
        return TraceGenerator(noise_scale=self.trace_noise, seed=seed)

    def churn_workload(self, duration: float, seed: int | None = None) -> ChurnWorkload:
        """A churn schedule scaled to the deployment size."""
        rate_per_second = (
            self.churn_per_hour_per_100 * (self.monitor.n_nodes / 100.0) / 3600.0
        )
        return ChurnWorkload(
            duration=duration,
            join_rate=rate_per_second / 2,
            leave_rate=rate_per_second / 2,
            crash_fraction=0.5 if self.name == "seti" else 0.1,
            seed=seed,
        )


_SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="cluster",
            description="the paper's 8-machine lab cluster, 512 DAT instances",
            monitor=MonitorConfig(n_nodes=512, bits=32, id_strategy="probing"),
            churn_per_hour_per_100=0.1,  # machines basically never leave
            trace_noise=4.0,
        ),
        Scenario(
            name="planetlab",
            description="PlanetLab circa the paper: ~706 machines, 340 sites",
            monitor=MonitorConfig(n_nodes=706, bits=32, id_strategy="probing"),
            churn_per_hour_per_100=2.0,  # occasional reboots/outages
            trace_noise=8.0,
        ),
        Scenario(
            name="grid",
            description="planet-scale Grid forecast: thousands of CPUs",
            monitor=MonitorConfig(n_nodes=8192, bits=32, id_strategy="probing"),
            churn_per_hour_per_100=1.0,
            trace_noise=5.0,
        ),
        Scenario(
            name="seti",
            description="SETI@home-like volunteer swarm: heavy churn, crashes",
            monitor=MonitorConfig(n_nodes=2048, bits=32, id_strategy="random"),
            churn_per_hour_per_100=40.0,  # volunteers come and go
            trace_noise=12.0,
        ),
    )
}


def scenario(name: str) -> Scenario:
    """Fetch a named scenario.

    >>> scenario("planetlab").monitor.n_nodes
    706
    """
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available: {sorted(_SCENARIOS)}"
        ) from None


def available_scenarios() -> list[str]:
    """Sorted scenario names."""
    return sorted(_SCENARIOS)

"""Query workloads for the MAAN routing-cost experiments (Sec. 2.2 claims)."""

from __future__ import annotations

import numpy as np

from repro.maan.attrs import AttributeSchema
from repro.maan.query import MultiAttributeQuery, RangeQuery
from repro.util.rng import ensure_rng
from repro.util.validation import check_probability

__all__ = ["QueryWorkload"]


class QueryWorkload:
    """Draws range queries with controlled selectivity.

    Parameters
    ----------
    schemas:
        Declared attributes to query against.
    seed:
        Reproducibility seed.
    """

    def __init__(
        self,
        schemas: dict[str, AttributeSchema],
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if not schemas:
            raise ValueError("query workload needs at least one schema")
        self.schemas = dict(schemas)
        self._rng = ensure_rng(seed)

    def range_query(self, attribute: str, selectivity: float) -> RangeQuery:
        """One range query covering ``selectivity`` of the attribute domain,
        at a uniformly random position."""
        check_probability("selectivity", selectivity)
        schema = self.schemas[attribute]
        low, high = float(schema.low), float(schema.high)  # type: ignore[arg-type]
        width = (high - low) * selectivity
        start = float(self._rng.uniform(low, high - width)) if width < high - low else low
        return RangeQuery(attribute=attribute, low=start, high=start + width)

    def multi_query(
        self, selectivities: dict[str, float]
    ) -> MultiAttributeQuery:
        """A conjunction with one sub-query per (attribute, selectivity)."""
        sub_queries = [
            self.range_query(attribute, selectivity)
            for attribute, selectivity in selectivities.items()
        ]
        return MultiAttributeQuery.of(*sub_queries)

    def batch(
        self, attribute: str, selectivity: float, count: int
    ) -> list[RangeQuery]:
        """``count`` i.i.d. range queries at fixed selectivity."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return [self.range_query(attribute, selectivity) for _ in range(count)]

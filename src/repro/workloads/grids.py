"""Synthetic Grid resource populations.

Models the paper's motivating setting: a fleet of heterogeneous machines
with static capabilities (cpu-speed, memory-size, disk-size) and dynamic
status (cpu-usage, load). Distributions follow common Grid inventory
shapes: a few discrete CPU-speed tiers, power-of-two memory sizes, and
heavy-tailed utilization.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.chord.ring import StaticRing
from repro.gma.producer import Producer
from repro.gma.sensors import RandomWalkSensor, TraceSensor
from repro.gma.traces import CpuTrace
from repro.maan.attrs import AttributeSchema, Resource
from repro.util.rng import ensure_rng

__all__ = ["default_schemas", "GridResourceGenerator", "make_producers"]

_CPU_SPEED_TIERS = (1.4, 1.8, 2.2, 2.6, 2.8, 3.0, 3.2)  # GHz
_MEMORY_TIERS = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0)  # GB
_DISK_TIERS = (40.0, 80.0, 160.0, 320.0, 640.0)  # GB


def default_schemas() -> dict[str, AttributeSchema]:
    """The attribute schemas used throughout the examples and benchmarks."""
    return {
        "cpu-speed": AttributeSchema("cpu-speed", low=0.5, high=5.0),
        "memory-size": AttributeSchema("memory-size", low=0.25, high=64.0),
        "disk-size": AttributeSchema("disk-size", low=10.0, high=2000.0),
        "cpu-usage": AttributeSchema("cpu-usage", low=0.0, high=100.0),
    }


class GridResourceGenerator:
    """Draws synthetic machine inventories.

    Parameters
    ----------
    seed:
        Reproducibility seed.
    """

    def __init__(self, seed: int | np.random.Generator | None = None) -> None:
        self._rng = ensure_rng(seed)

    def resource(self, resource_id: str) -> Resource:
        """One machine with static capabilities and a utilization snapshot."""
        rng = self._rng
        return Resource(
            resource_id=resource_id,
            attributes={
                "cpu-speed": float(rng.choice(_CPU_SPEED_TIERS)),
                "memory-size": float(rng.choice(_MEMORY_TIERS)),
                "disk-size": float(rng.choice(_DISK_TIERS)),
                # Utilization: beta(2, 3) skews toward moderate loads with a
                # tail of hot machines.
                "cpu-usage": float(100.0 * rng.beta(2.0, 3.0)),
            },
        )

    def fleet(self, count: int, prefix: str = "node") -> list[Resource]:
        """``count`` machines named ``{prefix}-{index}``."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return [self.resource(f"{prefix}-{index}") for index in range(count)]


def make_producers(
    ring: StaticRing,
    traces: list[CpuTrace] | None = None,
    seed: int | np.random.Generator | None = None,
    dynamic_attribute: str = "cpu-usage",
) -> dict[int, Producer]:
    """A producer per overlay node, sensor-backed for the dynamic attribute.

    With ``traces`` given (one per node, cycled if shorter), each node's
    dynamic attribute replays its trace — the Fig. 9 setup. Otherwise each
    node gets an independent random-walk sensor.
    """
    rng = ensure_rng(seed)
    generator = GridResourceGenerator(rng)
    producers: dict[int, Producer] = {}
    for index, node in enumerate(ring):
        resource = generator.resource(f"node-{index}")
        static = {
            name: value
            for name, value in resource.attributes.items()
            if name != dynamic_attribute
        }
        if traces is not None:
            sensor = TraceSensor(
                resource_id=resource.resource_id,
                attribute=dynamic_attribute,
                trace=traces[index % len(traces)],
            )
        else:
            sensor = RandomWalkSensor(
                resource_id=resource.resource_id,
                attribute=dynamic_attribute,
                seed=rng,
            )
        producers[node] = Producer(
            node=node,
            resource_id=resource.resource_id,
            sensors={dynamic_attribute: sensor},
            static_attributes=static,
        )
    return producers

"""Synthetic workload generators for the evaluation experiments."""

from repro.workloads.grids import (
    GridResourceGenerator,
    default_schemas,
    make_producers,
)
from repro.workloads.churn import ChurnEvent, ChurnKind, ChurnWorkload
from repro.workloads.queries import QueryWorkload
from repro.workloads.scenarios import Scenario, available_scenarios, scenario

__all__ = [
    "Scenario",
    "available_scenarios",
    "scenario",
    "GridResourceGenerator",
    "default_schemas",
    "make_producers",
    "ChurnEvent",
    "ChurnKind",
    "ChurnWorkload",
    "QueryWorkload",
]

"""Fig. 9 — accuracy of Grid resource monitoring (paper Sec. 5.4).

A 512-node Grid replays a 2-hour CPU-usage trace; the DAT aggregates the
global total (and average) per time slot, which is compared against ground
truth. The paper shows the aggregated series tracking the actual one
(Fig. 9a) and the actual-vs-aggregated scatter hugging the diagonal
(Fig. 9b).

Two collection models are provided:

* ``synchronous`` — one lock-step collection round per slot: every node's
  reading is taken at the same instant. The DAT result is then *exactly*
  the ground truth (a good correctness check, zero scatter).
* ``continuous`` — models the prototype's continuous push mode: a node at
  depth ``d`` in the tree contributes a reading that is ``d * push_period``
  seconds old by the time it reaches the root (one push interval per tree
  level). With a push period of a couple of seconds against a 10-second
  trace slot, this staleness is what produces the small off-diagonal
  scatter visible in the paper's Fig. 9(b).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.chord.hashing import sha1_id
from repro.chord.idgen import make_assigner
from repro.chord.idspace import IdSpace
from repro.chord.ring import StaticRing
from repro.core.aggregates import Aggregate, get_aggregate
from repro.core.builder import DatScheme, build_dat
from repro.core.tree import DatTree
from repro.gma.traces import CpuTrace, TraceGenerator

__all__ = ["Fig9Result", "run_fig9_accuracy"]


@dataclass
class Fig9Result:
    """Per-slot actual vs DAT-aggregated series plus error metrics."""

    n_nodes: int
    mode: str
    times: list[float] = field(default_factory=list)
    actual: list[float] = field(default_factory=list)
    aggregated: list[float] = field(default_factory=list)

    def errors(self) -> np.ndarray:
        """Per-slot absolute errors."""
        return np.abs(np.asarray(self.aggregated) - np.asarray(self.actual))

    def max_relative_error(self) -> float:
        """Worst slot-wise relative error (against the actual value)."""
        actual = np.asarray(self.actual)
        scale = np.where(np.abs(actual) > 1e-12, np.abs(actual), 1.0)
        return float(np.max(self.errors() / scale))

    def mean_relative_error(self) -> float:
        """Mean slot-wise relative error."""
        actual = np.asarray(self.actual)
        scale = np.where(np.abs(actual) > 1e-12, np.abs(actual), 1.0)
        return float(np.mean(self.errors() / scale))

    def correlation(self) -> float:
        """Pearson correlation between actual and aggregated series."""
        return float(np.corrcoef(self.actual, self.aggregated)[0, 1])

    def scatter_points(self) -> list[tuple[float, float]]:
        """The Fig. 9(b) (actual, aggregated) pairs."""
        return list(zip(self.actual, self.aggregated))


def run_fig9_accuracy(
    n_nodes: int = 512,
    bits: int = 32,
    mode: str = "continuous",
    aggregate: str = "sum",
    identical_traces: bool = True,
    n_slots: int | None = None,
    push_period: float = 2.0,
    scheme: str = "balanced",
    id_strategy: str = "probing",
    seed: int = 2007,
) -> Fig9Result:
    """Regenerate the Fig. 9 accuracy experiment.

    Parameters
    ----------
    n_nodes, bits:
        Overlay sizing (paper: 512 nodes).
    mode:
        ``"synchronous"`` (exact lock-step rounds) or ``"continuous"``
        (depth-proportional staleness, the realistic model).
    aggregate:
        ``"sum"`` for total CPU usage (Fig. 9a) or ``"avg"``.
    identical_traces:
        True replays one trace on every node (the paper's setup).
    n_slots:
        Trace slots to evaluate (default: the full 2-hour trace).
    push_period:
        Continuous-mode push period in seconds (staleness at depth ``d`` is
        ``d * push_period``).
    """
    if mode not in ("synchronous", "continuous"):
        raise ValueError(f"mode must be 'synchronous' or 'continuous', got {mode!r}")
    space = IdSpace(bits)
    ring = make_assigner(id_strategy).build_ring(space, n_nodes, rng=seed)
    key = sha1_id("cpu-usage", space)
    tree = build_dat(ring, key, scheme=DatScheme(scheme))
    depths = tree.depths()

    trace_gen = TraceGenerator(seed=seed)
    traces: list[CpuTrace] = trace_gen.generate_fleet(n_nodes, identical=identical_traces)
    node_trace = {node: traces[i] for i, node in enumerate(ring)}
    total_slots = traces[0].n_slots if n_slots is None else min(n_slots, traces[0].n_slots)

    agg = get_aggregate(aggregate)
    result = Fig9Result(n_nodes=n_nodes, mode=mode)
    order = sorted(tree.parent, key=lambda v: depths[v], reverse=True)
    max_depth = max(depths.values()) if depths else 0

    with telemetry.span(
        "experiment.fig9", n=n_nodes, mode=mode, slots=total_slots
    ):
        _run_fig9_slots(
            result, tree, ring, node_trace, depths, order, agg,
            mode, push_period, total_slots, traces[0].period,
        )
    if telemetry.is_enabled() and result.actual:
        telemetry.gauge_set(
            "fig9_mean_relative_error", result.mean_relative_error(), mode=mode
        )
        telemetry.gauge_set(
            "fig9_max_relative_error", result.max_relative_error(), mode=mode
        )
        telemetry.gauge_set("fig9_correlation", result.correlation(), mode=mode)
        # Worst-case reading age in continuous mode: one push period per
        # tree level between a leaf and the root.
        staleness = max_depth * push_period if mode == "continuous" else 0.0
        telemetry.gauge_set("fig9_max_staleness_seconds", staleness, mode=mode)
    return result


def _run_fig9_slots(
    result: Fig9Result,
    tree: DatTree,
    ring: StaticRing,
    node_trace: dict[int, CpuTrace],
    depths: dict[int, int],
    order: list[int],
    agg: Aggregate,
    mode: str,
    push_period: float,
    total_slots: int,
    period: float,
) -> None:
    """Evaluate every trace slot, publishing the per-slot series gauges."""
    emit = telemetry.is_enabled()
    for slot in range(total_slots):
        # Evaluate mid-slot: sampling exactly on a slot boundary would make
        # any nonzero staleness truncate into the previous slot, grossly
        # overstating the continuous-mode error.
        t = (slot + 0.5) * period
        # Ground truth: everyone's reading at exactly t.
        actual = agg.aggregate(node_trace[node].at_slot(slot) for node in ring)

        # DAT estimate: bottom-up merge; in continuous mode node v's reading
        # is depth(v) push periods stale when it arrives at the root.
        def reading(node: int) -> float:
            if mode == "synchronous":
                return node_trace[node].at_slot(slot)
            stale_time = max(t - depths[node] * push_period, 0.0)
            return node_trace[node].at_time(stale_time)

        states = {node: agg.lift(reading(node)) for node in tree.nodes()}
        for node in order:
            parent = tree.parent[node]
            states[parent] = agg.merge(states[parent], states[node])
        aggregated = agg.finalize(states[tree.root])

        result.times.append(t)
        result.actual.append(float(actual))
        result.aggregated.append(float(aggregated))
        if emit:
            telemetry.gauge_set(
                "fig9_actual", float(actual), mode=mode, slot=slot
            )
            telemetry.gauge_set(
                "fig9_aggregated", float(aggregated), mode=mode, slot=slot
            )

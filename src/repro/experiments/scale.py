"""Fig. 7/8-grade statistics at 10^5-10^6 nodes (the ROADMAP scale push).

The paper's scalability claims (Sec. 3, Figs. 7-8) are asymptotic; the
figure sweeps top out at 8192 nodes. This module measures the same
statistics — max/average branching, height, per-scheme load imbalance —
one to two orders of magnitude further, entirely on the array-native
pipeline: array-backed rings (:class:`~repro.chord.ringarray.RingArray`),
one shared finger matrix, and :class:`~repro.chord.fastbuild.DatTreeArrays`
statistics that never materialize per-node Python objects.

Every point can also be measured with ``oracle=True``, which runs the
object-based reference path (:func:`~repro.core.builder.build_dat`,
:func:`~repro.baselines.centralized.centralized_routed_loads`) on the same
ring. The two modes return *equal* :class:`ScalePoint` values — floats
bit-identical — which is the exactness gate ``benchmarks/bench_scale.py``
enforces at every size where the oracle is affordable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro import telemetry
from repro.baselines.centralized import centralized_routed_loads
from repro.chord.fastbuild import (
    fast_centralized_load_array,
    fast_finger_matrix,
    fast_tree_arrays,
)
from repro.chord.idgen import make_assigner
from repro.chord.idspace import IdSpace
from repro.chord.ring import StaticRing
from repro.core.analysis import imbalance_factor
from repro.core.builder import DatScheme, build_balanced_dat, build_basic_dat
from repro.core.slab import run_protocol_oracle, run_protocol_slab
from repro.core.tree import TreeStats
from repro.sim.messages import reset_msg_ids

__all__ = [
    "SCALE_SIZES",
    "PROTOCOL_SIZES",
    "PROTOCOL_ROUNDS",
    "ScalePoint",
    "ProtocolScalePoint",
    "measure_scale_point",
    "run_scale_sweep",
    "measure_protocol_point",
    "run_protocol_sweep",
]

#: The scale sweep's x-axis: 2x steps from 16k to 262k nodes.
SCALE_SIZES = [16384, 65536, 131072, 262144]

#: The protocol sweep's x-axis (live message exchange, not just statistics).
PROTOCOL_SIZES = [16384, 65536, 131072]

#: Default push intervals per protocol point — comfortably past the
#: balanced tree height at these sizes, so the root estimate converges.
PROTOCOL_ROUNDS = 30


@dataclass(frozen=True)
class ScalePoint:
    """Fig. 7 + Fig. 8 statistics for one (size, strategy, seed) ring.

    Instances compare equal across the fast and oracle paths — including
    the float fields, which both paths compute with the same IEEE
    operation sequence (one integer-exact division per mean, one ratio).
    """

    n_nodes: int
    id_strategy: str
    seed: int
    #: Sec. 5.2 tree metrics per scheme (Fig. 7).
    basic: TreeStats
    balanced: TreeStats
    #: Max per-node load and max/mean imbalance per scheme (Fig. 8).
    basic_max_load: int
    balanced_max_load: int
    centralized_max_load: int
    basic_imbalance: float
    balanced_imbalance: float
    centralized_imbalance: float

    def as_row(self) -> dict[str, float | int | str]:
        """Flat dict for tables and the benchmark's JSON output."""
        return {
            "n": self.n_nodes,
            "ids": self.id_strategy,
            "basic_max_branching": self.basic.max_branching,
            "basic_avg_branching": self.basic.avg_branching,
            "basic_height": self.basic.height,
            "balanced_max_branching": self.balanced.max_branching,
            "balanced_avg_branching": self.balanced.avg_branching,
            "balanced_height": self.balanced.height,
            "centralized_max_load": self.centralized_max_load,
            "basic_imbalance": self.basic_imbalance,
            "balanced_imbalance": self.balanced_imbalance,
            "centralized_imbalance": self.centralized_imbalance,
        }


def _measure_fast(
    ring: StaticRing, rendezvous: int
) -> tuple[TreeStats, TreeStats, int, int, int, float, float, float]:
    matrix = fast_finger_matrix(ring)
    basic = fast_tree_arrays(
        ring, rendezvous, scheme=DatScheme.BASIC, matrix=matrix
    )
    balanced = fast_tree_arrays(
        ring, rendezvous, scheme=DatScheme.BALANCED, matrix=matrix
    )
    basic_loads = basic.message_load_array()
    balanced_loads = balanced.message_load_array()
    central_loads = fast_centralized_load_array(ring, rendezvous, matrix=matrix)
    return (
        basic.stats(),
        balanced.stats(),
        int(basic_loads.max()),
        int(balanced_loads.max()),
        int(central_loads.max()),
        imbalance_factor(basic_loads),
        imbalance_factor(balanced_loads),
        imbalance_factor(central_loads),
    )


def _measure_oracle(
    ring: StaticRing, rendezvous: int
) -> tuple[TreeStats, TreeStats, int, int, int, float, float, float]:
    tables = ring.all_finger_tables()
    basic = build_basic_dat(ring, rendezvous, tables=tables)
    balanced = build_balanced_dat(ring, rendezvous, tables=tables)
    basic_loads = basic.message_loads()
    balanced_loads = balanced.message_loads()
    central_loads = centralized_routed_loads(ring, rendezvous, tables=tables)
    return (
        basic.stats(),
        balanced.stats(),
        max(basic_loads.values()),
        max(balanced_loads.values()),
        max(central_loads.values()),
        imbalance_factor(basic_loads),
        imbalance_factor(balanced_loads),
        imbalance_factor(central_loads),
    )


def measure_scale_point(
    n_nodes: int,
    bits: int = 32,
    seed: int = 2007,
    id_strategy: str = "probing",
    key: int = 0xA5A5A5,
    oracle: bool = False,
) -> ScalePoint:
    """Measure one ring's Fig. 7/8 statistics.

    ``oracle=True`` runs the object-based reference path instead of the
    array-native one; the returned :class:`ScalePoint` is equal either way
    (the benchmark asserts this), so the flag exists purely to *prove* the
    equality and to measure the speedup.
    """
    space = IdSpace(bits)
    ring = make_assigner(id_strategy).build_ring(space, n_nodes, rng=seed)
    rendezvous = space.wrap(key)
    measure = _measure_oracle if oracle else _measure_fast
    (
        basic_stats,
        balanced_stats,
        basic_max,
        balanced_max,
        central_max,
        basic_imb,
        balanced_imb,
        central_imb,
    ) = measure(ring, rendezvous)
    return ScalePoint(
        n_nodes=n_nodes,
        id_strategy=id_strategy,
        seed=seed,
        basic=basic_stats,
        balanced=balanced_stats,
        basic_max_load=basic_max,
        balanced_max_load=balanced_max,
        centralized_max_load=central_max,
        basic_imbalance=basic_imb,
        balanced_imbalance=balanced_imb,
        centralized_imbalance=central_imb,
    )


@dataclass(frozen=True)
class ProtocolScalePoint:
    """One *live-protocol* run at scale: real pushes through the transport.

    Unlike :class:`ScalePoint` (converged analytical statistics), every
    number here comes from simulated message exchange — ``rounds``
    continuous-push intervals with per-message wire accounting. The slab
    and oracle modes agree exactly on every field except
    ``state_bytes_per_node`` (the slab's array footprint; the oracle's
    object webs are not meaningfully comparable and report 0.0).
    """

    n_nodes: int
    id_strategy: str
    seed: int
    scheme: str
    aggregate: str
    rounds: int
    estimate: Any
    expected: Any
    converged: bool
    messages_total: int
    bytes_total: int
    pushes_total: int
    max_load: int
    imbalance: float
    state_bytes_per_node: float

    def as_row(self) -> dict[str, float | int | str]:
        """Flat dict for tables and the benchmark's JSON output."""
        return {
            "n": self.n_nodes,
            "ids": self.id_strategy,
            "scheme": self.scheme,
            "aggregate": self.aggregate,
            "rounds": self.rounds,
            "estimate": self.estimate,
            "converged": self.converged,
            "messages_total": self.messages_total,
            "bytes_total": self.bytes_total,
            "pushes_total": self.pushes_total,
            "max_load": self.max_load,
            "imbalance": self.imbalance,
            "state_bytes_per_node": self.state_bytes_per_node,
        }

    def exactness_key(self) -> tuple[Any, ...]:
        """The fields both modes must agree on bit-for-bit."""
        return (
            self.estimate,
            self.messages_total,
            self.bytes_total,
            self.pushes_total,
            self.max_load,
            self.imbalance,
        )


def measure_protocol_point(
    n_nodes: int,
    bits: int = 32,
    seed: int = 2007,
    id_strategy: str = "probing",
    key: int = 0xA5A5A5,
    scheme: str = "balanced",
    aggregate: str = "sum",
    rounds: int = PROTOCOL_ROUNDS,
    interval: float = 1.0,
    oracle: bool = False,
) -> ProtocolScalePoint:
    """Run one live continuous-push protocol point.

    Local values are all 1.0, so the converged SUM equals the membership
    size — a self-evident correctness check at any scale. ``oracle=True``
    drives real per-node :class:`~repro.core.service.DatNodeService`
    objects instead of the slab (affordable to a few thousand nodes); the
    message-id sequence is reset at the start of each point so the two
    modes produce byte-identical wire traffic.
    """
    space = IdSpace(bits)
    ring = make_assigner(id_strategy).build_ring(space, n_nodes, rng=seed)
    rendezvous = space.wrap(key)
    reset_msg_ids()
    run = run_protocol_oracle if oracle else run_protocol_slab
    result = run(
        ring,
        rendezvous,
        rounds,
        aggregate=aggregate,
        scheme=scheme,
        interval=interval,
    )
    loads = result.sent + result.received
    expected: Any = float(n_nodes) if aggregate == "sum" else None
    if aggregate == "count":
        expected = n_nodes
    elif aggregate in ("min", "max", "avg"):
        expected = 1.0
    return ProtocolScalePoint(
        n_nodes=n_nodes,
        id_strategy=id_strategy,
        seed=seed,
        scheme=scheme,
        aggregate=aggregate,
        rounds=rounds,
        estimate=result.estimate,
        expected=expected,
        converged=result.estimate == expected,
        messages_total=result.messages_total,
        bytes_total=result.bytes_total,
        pushes_total=result.pushes_total,
        max_load=int(loads.max()),
        imbalance=imbalance_factor(loads),
        state_bytes_per_node=(
            result.state_bytes / n_nodes if result.state_bytes else 0.0
        ),
    )


def run_protocol_sweep(
    sizes: list[int] | None = None,
    bits: int = 32,
    seed: int = 2007,
    id_strategy: str = "probing",
    key: int = 0xA5A5A5,
    scheme: str = "balanced",
    aggregate: str = "sum",
    rounds: int = PROTOCOL_ROUNDS,
    oracle: bool = False,
) -> list[ProtocolScalePoint]:
    """Measure the live-protocol sweep (the ``--protocol`` experiment mode).

    Publishes per-point ``scale_protocol_messages`` /
    ``scale_protocol_imbalance`` gauges when telemetry is enabled; wall
    clocks belong to ``benchmarks/bench_scale.py`` as usual.
    """
    sizes = sizes if sizes is not None else PROTOCOL_SIZES
    points: list[ProtocolScalePoint] = []
    with telemetry.span(
        "experiment.scale_protocol", n_sizes=len(sizes), oracle=oracle
    ):
        for n_nodes in sizes:
            point = measure_protocol_point(
                n_nodes,
                bits=bits,
                seed=seed,
                id_strategy=id_strategy,
                key=key,
                scheme=scheme,
                aggregate=aggregate,
                rounds=rounds,
                oracle=oracle,
            )
            points.append(point)
            if telemetry.is_enabled():
                labels = {"scheme": scheme, "ids": id_strategy, "n": n_nodes}
                telemetry.gauge_set(
                    "scale_protocol_messages",
                    float(point.messages_total),
                    **labels,
                )
                telemetry.gauge_set(
                    "scale_protocol_imbalance", point.imbalance, **labels
                )
    return points


def run_scale_sweep(
    sizes: list[int] | None = None,
    bits: int = 32,
    seed: int = 2007,
    id_strategy: str = "probing",
    key: int = 0xA5A5A5,
    oracle: bool = False,
) -> list[ScalePoint]:
    """Measure the full scale sweep (one seed — points are already huge).

    Publishes per-point ``scale_max_branching`` / ``scale_height`` /
    ``scale_imbalance`` gauges when telemetry is enabled; the wall-clock
    ``scale_build_seconds`` gauge is set by ``benchmarks/bench_scale.py``,
    which owns the timing (library code never reads wall clocks —
    datlint DAT008).
    """
    sizes = sizes if sizes is not None else SCALE_SIZES
    points: list[ScalePoint] = []
    with telemetry.span(
        "experiment.scale", n_sizes=len(sizes), oracle=oracle
    ):
        for n_nodes in sizes:
            point = measure_scale_point(
                n_nodes,
                bits=bits,
                seed=seed,
                id_strategy=id_strategy,
                key=key,
                oracle=oracle,
            )
            points.append(point)
            if telemetry.is_enabled():
                for scheme, stats in (
                    ("basic", point.basic),
                    ("balanced", point.balanced),
                ):
                    labels = {"scheme": scheme, "ids": id_strategy, "n": n_nodes}
                    telemetry.gauge_set(
                        "scale_max_branching",
                        float(stats.max_branching),
                        **labels,
                    )
                    telemetry.gauge_set(
                        "scale_height", float(stats.height), **labels
                    )
                for scheme, imbalance in (
                    ("basic", point.basic_imbalance),
                    ("balanced", point.balanced_imbalance),
                    ("centralized", point.centralized_imbalance),
                ):
                    telemetry.gauge_set(
                        "scale_imbalance",
                        imbalance,
                        scheme=scheme,
                        ids=id_strategy,
                        n=n_nodes,
                    )
    return points

"""MAAN routing-cost validation (paper Sec. 2.2 complexity claims).

Measured quantities:

* registration hops per resource vs network size — claim ``O(m log n)``;
* single-attribute range-query hops vs selectivity — claim
  ``O(log n + k)`` with ``k`` proportional to the queried arc;
* multi-attribute query hops — claim ``O(log n + n * s_min)``: the cost
  follows the *minimum* sub-query selectivity, not the product or sum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chord.idgen import make_assigner
from repro.chord.idspace import IdSpace
from repro.maan.network import MaanNetwork
from repro.workloads.grids import GridResourceGenerator, default_schemas
from repro.workloads.queries import QueryWorkload

__all__ = ["MaanRoutingResult", "run_maan_routing"]


@dataclass
class MaanRoutingResult:
    """Measured MAAN routing costs for one configuration."""

    n_nodes: int
    n_resources: int
    #: mean hops to register one resource (all attributes).
    registration_hops: float = 0.0
    #: attributes indexed per resource (the m of O(m log n)).
    attributes_per_resource: int = 0
    #: selectivity -> mean (lookup_hops, nodes_visited) per range query.
    range_costs: dict[float, tuple[float, float]] = field(default_factory=dict)
    #: s_min -> mean total hops for multi-attribute queries.
    multi_costs: dict[float, float] = field(default_factory=dict)

    def registration_hops_per_attribute(self) -> float:
        """Hops per attribute — should track log2(n)."""
        return self.registration_hops / self.attributes_per_resource


def run_maan_routing(
    n_nodes: int = 256,
    n_resources: int = 256,
    bits: int = 32,
    selectivities: list[float] | None = None,
    queries_per_point: int = 20,
    seed: int = 2007,
) -> MaanRoutingResult:
    """Measure registration and query costs on one MAAN deployment."""
    selectivities = selectivities if selectivities is not None else [0.01, 0.05, 0.1, 0.2, 0.4]
    space = IdSpace(bits)
    ring = make_assigner("probing").build_ring(space, n_nodes, rng=seed)
    schemas = default_schemas()
    network = MaanNetwork(ring, schemas)

    generator = GridResourceGenerator(seed=seed)
    resources = generator.fleet(n_resources)
    total_hops = sum(network.register(resource) for resource in resources)

    result = MaanRoutingResult(
        n_nodes=n_nodes,
        n_resources=n_resources,
        registration_hops=total_hops / n_resources,
        attributes_per_resource=len(schemas),
    )

    workload = QueryWorkload(schemas, seed=seed + 1)
    for selectivity in selectivities:
        lookups: list[int] = []
        visits: list[int] = []
        for query in workload.batch("cpu-usage", selectivity, queries_per_point):
            outcome = network.range_query(query)
            lookups.append(outcome.lookup_hops)
            visits.append(outcome.nodes_visited)
        result.range_costs[selectivity] = (
            sum(lookups) / len(lookups),
            sum(visits) / len(visits),
        )

    # Multi-attribute: one broad sub-query (0.5) and one narrow (s_min);
    # cost should follow s_min only.
    for s_min in selectivities:
        totals: list[int] = []
        for _ in range(queries_per_point):
            query = workload.multi_query({"cpu-usage": s_min, "memory-size": 0.5})
            outcome = network.multi_attribute_query(query)
            totals.append(outcome.total_hops)
        result.multi_costs[s_min] = sum(totals) / len(totals)
    return result

"""Entry point: ``python -m repro.experiments <figure> [...]``."""

import sys

from repro.experiments.cli import main

sys.exit(main())

"""Plain-text table rendering for experiment output.

Benchmarks print the same rows the paper plots; this keeps the formatting
in one place so bench output and EXPERIMENTS.md stay consistent.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = ["format_table"]


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".") if value else "0"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dict-rows as an aligned monospaced table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    cells = [[_format_cell(row.get(col, "")) for col in cols] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells)) for i, col in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(col.ljust(w) for col, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)

"""Shared plumbing for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

from repro.util.rng import spawn_seeds

__all__ = ["SweepPoint", "seeded_sweep", "mean", "geometric_sizes"]

T = TypeVar("T")


@dataclass(frozen=True)
class SweepPoint:
    """One (x, y) sample of a parameter sweep with its spread."""

    x: float
    y: float
    y_min: float
    y_max: float
    n_seeds: int

    def as_row(self) -> dict[str, float]:
        """Plain-dict row for tabular output."""
        return {
            "x": self.x,
            "y": self.y,
            "y_min": self.y_min,
            "y_max": self.y_max,
            "n_seeds": self.n_seeds,
        }


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean of a non-empty sequence."""
    if not values:
        raise ValueError("mean of an empty sequence")
    return sum(values) / len(values)


def seeded_sweep(
    xs: Sequence[float],
    measure: Callable[[float, int], float],
    n_seeds: int = 3,
    master_seed: int = 0,
) -> list[SweepPoint]:
    """Evaluate ``measure(x, seed)`` over ``xs`` with ``n_seeds`` repetitions.

    Returns one aggregated point per x with mean and min/max band — the
    format every figure sweep uses.
    """
    points: list[SweepPoint] = []
    seeds = spawn_seeds(master_seed, n_seeds)
    for x in xs:
        samples = [measure(x, seed) for seed in seeds]
        points.append(
            SweepPoint(
                x=x,
                y=mean(samples),
                y_min=min(samples),
                y_max=max(samples),
                n_seeds=n_seeds,
            )
        )
    return points


def geometric_sizes(low: int, high: int, factor: int = 2) -> list[int]:
    """Sizes ``low, low*factor, ...`` up to and including ``high``."""
    if low <= 0 or high < low or factor < 2:
        raise ValueError(f"invalid geometric range ({low}, {high}, {factor})")
    sizes = []
    size = low
    while size <= high:
        sizes.append(size)
        size *= factor
    return sizes

"""Experiment harness: one module per paper figure/table (DESIGN.md Sec. 4).

Each experiment function returns a structured result object with the exact
rows/series the paper plots; ``benchmarks/`` wraps them with pytest-benchmark
and asserts the paper's shape claims; EXPERIMENTS.md records paper-vs-measured.
"""

from repro.experiments.common import SweepPoint, seeded_sweep
from repro.experiments.fig7_tree_properties import (
    Fig7Point,
    run_fig7_tree_properties,
    POWER_OF_TWO_SIZES,
)
from repro.experiments.fig8_load_balance import (
    Fig8Distribution,
    Fig8ImbalancePoint,
    run_fig8a_message_distribution,
    run_fig8b_imbalance_sweep,
)
from repro.experiments.fig9_accuracy import Fig9Result, run_fig9_accuracy
from repro.experiments.maan_routing import MaanRoutingResult, run_maan_routing
from repro.experiments.churn_overhead import ChurnOverheadResult, run_churn_overhead
from repro.experiments.dynamics import DynamicsPoint, DynamicsResult, run_dynamics
from repro.experiments.report import format_table
from repro.experiments.scale import (
    SCALE_SIZES,
    ScalePoint,
    measure_scale_point,
    run_scale_sweep,
)

__all__ = [
    "SweepPoint",
    "seeded_sweep",
    "Fig7Point",
    "run_fig7_tree_properties",
    "POWER_OF_TWO_SIZES",
    "Fig8Distribution",
    "Fig8ImbalancePoint",
    "run_fig8a_message_distribution",
    "run_fig8b_imbalance_sweep",
    "Fig9Result",
    "run_fig9_accuracy",
    "MaanRoutingResult",
    "run_maan_routing",
    "ChurnOverheadResult",
    "run_churn_overhead",
    "DynamicsPoint",
    "DynamicsResult",
    "run_dynamics",
    "format_table",
    "SCALE_SIZES",
    "ScalePoint",
    "measure_scale_point",
    "run_scale_sweep",
]

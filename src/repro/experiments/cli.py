"""Command-line interface: regenerate any paper figure as a text table.

Usage::

    python -m repro.experiments fig7            # tree properties sweep
    python -m repro.experiments fig8a fig8b     # load-balance figures
    python -m repro.experiments fig9 --nodes 256
    python -m repro.experiments all --quick

``--quick`` shrinks sweeps for a fast smoke pass; the defaults reproduce
the paper-scale configurations used by ``benchmarks/``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro import telemetry
from repro.experiments.churn_overhead import run_churn_overhead
from repro.experiments.dynamics import run_dynamics
from repro.experiments.fig7_tree_properties import (
    POWER_OF_TWO_SIZES,
    run_fig7_tree_properties,
)
from repro.experiments.fig8_load_balance import (
    run_fig8a_message_distribution,
    run_fig8b_imbalance_sweep,
)
from repro.experiments.fig9_accuracy import run_fig9_accuracy
from repro.experiments.maan_routing import run_maan_routing
from repro.experiments.report import format_table
from repro.experiments.scale import (
    PROTOCOL_SIZES,
    SCALE_SIZES,
    run_protocol_sweep,
    run_scale_sweep,
)

__all__ = ["main", "EXPERIMENTS"]


def _fig7(args: argparse.Namespace) -> str:
    sizes = [16, 64, 256] if args.quick else POWER_OF_TWO_SIZES
    points = run_fig7_tree_properties(
        sizes=sizes, n_seeds=1 if args.quick else 3, master_seed=args.seed
    )
    return format_table(
        [p.as_row() for p in points],
        title="Fig 7 — DAT tree properties vs network size",
    )


def _fig8a(args: argparse.Namespace) -> str:
    n = 128 if args.quick else args.nodes
    dist = run_fig8a_message_distribution(n_nodes=n, seed=args.seed)
    ranks = sorted({0, 1, 2, 4, 8, 16, 32, n // 4, n // 2, n - 1} & set(range(n)))
    rows = [
        {
            "rank": rank,
            "centralized": dist.centralized[rank],
            "basic": dist.basic[rank],
            "balanced": dist.balanced[rank],
        }
        for rank in ranks
    ]
    return format_table(
        rows, title=f"Fig 8(a) — messages per node by rank (n={n})"
    )


def _fig8b(args: argparse.Namespace) -> str:
    sizes = [100, 400, 1000] if args.quick else None
    points = run_fig8b_imbalance_sweep(
        sizes=sizes, n_seeds=1 if args.quick else 3, master_seed=args.seed
    )
    return format_table(
        [p.as_row() for p in points],
        title="Fig 8(b) — imbalance factor vs network size",
    )


def _fig9(args: argparse.Namespace) -> str:
    n = 64 if args.quick else args.nodes
    slots = 60 if args.quick else None
    result = run_fig9_accuracy(
        n_nodes=n,
        n_slots=slots,
        mode="continuous",
        identical_traces=False,
        push_period=1.0,
        seed=args.seed,
    )
    stride = max(len(result.times) // 20, 1)
    rows = [
        {
            "t": result.times[i],
            "actual": round(result.actual[i], 1),
            "aggregated": round(result.aggregated[i], 1),
        }
        for i in range(0, len(result.times), stride)
    ]
    table = format_table(
        rows, title=f"Fig 9 — actual vs aggregated total CPU usage (n={n})"
    )
    return (
        table
        + f"\nmean relative error: {result.mean_relative_error() * 100:.3f}%"
        + f"\nmax relative error : {result.max_relative_error() * 100:.3f}%"
    )


def _maan(args: argparse.Namespace) -> str:
    n = 64 if args.quick else 512
    result = run_maan_routing(
        n_nodes=n, n_resources=n, queries_per_point=5 if args.quick else 20,
        seed=args.seed,
    )
    rows = [
        {
            "selectivity": s,
            "lookup_hops": round(result.range_costs[s][0], 2),
            "arc_nodes": round(result.range_costs[s][1], 2),
            "multi_total": round(result.multi_costs[s], 2),
        }
        for s in sorted(result.range_costs)
    ]
    return format_table(
        rows,
        title=(
            f"MAAN routing (n={n}; registration "
            f"{result.registration_hops:.1f} hops/resource)"
        ),
    )


def _churn(args: argparse.Namespace) -> str:
    result = run_churn_overhead(
        n_nodes=16 if args.quick else 32,
        n_churn_events=4 if args.quick else 12,
        bits=16,
        seed=args.seed,
    )
    rows = [
        {"kind": kind, "messages": count}
        for kind, count in sorted(result.by_kind.items(), key=lambda kv: -kv[1])
    ]
    table = format_table(rows, title="Churn overhead — message kinds")
    return (
        table
        + f"\nDAT maintenance messages: {result.dat_maintenance_messages()}"
        + f"\nmean tree-repair rounds : {result.mean_repair_rounds():.1f}"
    )


def _dynamics(args: argparse.Namespace) -> str:
    result = run_dynamics(
        churn_rates=[0.0, 0.3] if args.quick else [0.0, 0.2, 0.5, 1.0],
        n_nodes=8 if args.quick else 16,
        duration=10.0 if args.quick else 30.0,
        seed=args.seed,
    )
    return format_table(
        [p.as_row() for p in result.points],
        title="DAT continuous COUNT accuracy under churn (Sec. 7 future work)",
    )


def _scale(args: argparse.Namespace) -> str:
    if args.protocol:
        sizes = [1024, 4096] if args.quick else PROTOCOL_SIZES
        points = run_protocol_sweep(sizes=sizes, seed=args.seed)
        return format_table(
            [p.as_row() for p in points],
            title="Scale — live protocol (slab path) at 10^4-10^5+ nodes",
        )
    sizes = [1024, 4096] if args.quick else SCALE_SIZES
    points = run_scale_sweep(sizes=sizes, seed=args.seed)
    return format_table(
        [p.as_row() for p in points],
        title="Scale — Fig 7/8 statistics at 10^4-10^5+ nodes (array-native)",
    )


EXPERIMENTS: dict[str, Callable[[argparse.Namespace], str]] = {
    "fig7": _fig7,
    "fig8a": _fig8a,
    "fig8b": _fig8b,
    "fig9": _fig9,
    "maan": _maan,
    "churn": _churn,
    "dynamics": _dynamics,
    "scale": _scale,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures as text tables.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which figures to regenerate",
    )
    parser.add_argument("--quick", action="store_true", help="small fast configs")
    parser.add_argument(
        "--protocol",
        action="store_true",
        help=(
            "scale experiment: run the live continuous-push protocol "
            "(slab path) instead of the analytical statistics sweep"
        ),
    )
    parser.add_argument("--nodes", type=int, default=512, help="network size where applicable")
    parser.add_argument("--seed", type=int, default=2007, help="master seed")
    parser.add_argument(
        "--telemetry-jsonl",
        metavar="PATH",
        help="enable telemetry and stream the JSONL event pipeline here",
    )
    parser.add_argument(
        "--trace-jsonl",
        metavar="PATH",
        help=(
            "enable distributed tracing and stream span JSONL here; "
            "assemble with python -m repro.telemetry.traces PATH"
        ),
    )
    parser.add_argument(
        "--telemetry-prom",
        metavar="PATH",
        help="enable telemetry and write the Prometheus text export here",
    )
    parser.add_argument(
        "--telemetry-sample-window",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help=(
            "sim-seconds between rolling hotspot samples on live transports "
            "(0 disables periodic sampling)"
        ),
    )
    parser.add_argument(
        "--telemetry-chunk-size",
        type=int,
        default=None,
        metavar="SPANS",
        help="JSONL stream flush threshold (spans buffered before a write)",
    )
    parser.add_argument(
        "--telemetry-sample-every",
        type=int,
        default=None,
        metavar="K",
        help="keep every K-th span per span name (dropped spans are counted)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    names = sorted(EXPERIMENTS) if "all" in args.experiments else args.experiments
    live = None
    if args.telemetry_jsonl or args.telemetry_prom or args.trace_jsonl:
        overrides: dict[str, object] = {
            "enabled": True,
            "sample_window": args.telemetry_sample_window,
        }
        if args.trace_jsonl:
            overrides["tracing"] = True
        if args.telemetry_chunk_size is not None:
            overrides["span_chunk_size"] = args.telemetry_chunk_size
        if args.telemetry_sample_every is not None:
            overrides["span_sample_every"] = args.telemetry_sample_every
        tel = telemetry.configure(**overrides)
        assert tel is not None
        live = telemetry.LiveExport(
            tel,
            jsonl_path=args.telemetry_jsonl or args.trace_jsonl,
            prom_path=args.telemetry_prom,
        )
    try:
        for name in names:
            print(EXPERIMENTS[name](args))
            print()
    finally:
        if live is not None:
            live.close()
            telemetry.disable()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

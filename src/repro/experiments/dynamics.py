"""DAT accuracy under extreme node dynamics (paper Sec. 7 future work).

"For continuing efforts, we suggest to investigate the performance of DAT
under extreme node dynamics." This experiment does exactly that: a live
overlay runs a continuous COUNT aggregation (each node contributes 1, so
the true answer *is* the live membership) while nodes join and crash at
increasing rates. Reported per churn rate:

* mean/max relative error of the root's estimate against live membership;
* availability — the fraction of samples where the estimate is within a
  tolerance band of the truth.

The COUNT aggregate is the hardest case for implicit trees under churn:
every stale or missing contribution shows up directly in the estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.chord.idspace import IdSpace
from repro.chord.incremental import DatUpdateEngine
from repro.chord.node import ChordConfig
from repro.chord.ring import StaticRing
from repro.core.overlay import DatOverlay
from repro.sim.latency import ConstantLatency
from repro.sim.simnet import SimTransport
from repro.util.rng import ensure_rng

__all__ = ["DynamicsPoint", "DynamicsResult", "run_dynamics"]


@dataclass(frozen=True)
class DynamicsPoint:
    """Accuracy metrics at one churn rate."""

    churn_rate: float  # membership changes per virtual second
    n_samples: int
    mean_relative_error: float
    max_relative_error: float
    availability: float  # fraction of samples within the tolerance band
    #: mean finger+parent entries the incremental model mirror touched per
    #: membership event (0.0 for the stable baseline / when not measured).
    mean_incremental_updates: float = 0.0

    def as_row(self) -> dict[str, float]:
        return {
            "churn_per_s": self.churn_rate,
            "samples": self.n_samples,
            "mean_rel_err": round(self.mean_relative_error, 4),
            "max_rel_err": round(self.max_relative_error, 4),
            "availability": round(self.availability, 3),
            "incr_updates": round(self.mean_incremental_updates, 2),
        }


@dataclass
class DynamicsResult:
    """Full sweep outcome."""

    n_nodes: int
    points: list[DynamicsPoint] = field(default_factory=list)


def _measure_one_rate(
    churn_rate: float,
    n_nodes: int,
    bits: int,
    key: int,
    duration: float,
    interval: float,
    tolerance: float,
    stale_after: float,
    seed: int,
) -> DynamicsPoint:
    rng = ensure_rng(seed)
    space = IdSpace(bits)
    key = space.wrap(key)
    # One hotspot accountant per churn rate: with TelemetryConfig.sample_window
    # set, each transport's tick hook emits its own rolling imbalance series
    # (the per-window tables in ``repro.telemetry.report``) without the
    # sweep's rates interleaving into one series.
    transport = SimTransport(
        latency=ConstantLatency(0.005),
        rng=rng,
        hotspot_name=f"dynamics.rate{churn_rate:g}",
    )
    config = ChordConfig(
        stabilize_interval=0.25, fix_fingers_interval=0.05, rpc_timeout=0.5
    )
    overlay = DatOverlay(space, transport, config)

    idents = sorted(int(i) for i in rng.choice(space.size, n_nodes, replace=False))
    for ident in idents:
        overlay.add_node(ident)
        overlay.run(1.0)
    overlay.network.settle_until_converged()
    for node in overlay.network.nodes.values():
        node.fix_all_fingers()
    overlay.run(5.0)

    overlay.start_continuous_everywhere(
        key, "count", interval, stale_after=stale_after
    )
    overlay.run(interval * 12)  # warm-up: fill the tree

    # Converged-ring mirror, maintained incrementally per event — the
    # analytical repair cost accompanying the live accuracy measurements.
    mirror = DatUpdateEngine(StaticRing(space, sorted(overlay.network.nodes)))
    mirror.track(key)
    event_updates: list[int] = []

    errors: list[float] = []
    within: int = 0
    samples = 0
    elapsed = 0.0
    next_churn = (
        float(rng.exponential(1.0 / churn_rate)) if churn_rate > 0 else float("inf")
    )
    while elapsed < duration:
        step = min(interval, duration - elapsed)
        overlay.run(step)
        elapsed += step
        # Apply due churn events.
        while next_churn <= elapsed:
            if rng.random() < 0.5 and len(overlay) > n_nodes // 2:
                victims = [v for v in overlay.network.nodes]
                victim = victims[int(rng.integers(0, len(victims)))]
                if victim != overlay.current_root(key):
                    overlay.remove_node(victim, graceful=False)
                    report = mirror.apply("crash", victim)
                    event_updates.append(
                        report.finger_updates + report.parent_updates
                    )
            else:
                candidate = int(rng.integers(0, space.size))
                if candidate not in overlay.network.nodes:
                    overlay.add_node(candidate)
                    overlay.enroll(
                        candidate, key, "count", interval,
                        stale_after=stale_after,
                    )
                    report = mirror.apply("join", candidate)
                    event_updates.append(
                        report.finger_updates + report.parent_updates
                    )
            next_churn += float(rng.exponential(1.0 / churn_rate))

        estimate = overlay.root_estimate(key)
        truth = len(overlay)
        if estimate is None:
            continue
        samples += 1
        relative = abs(float(estimate) - truth) / truth
        errors.append(relative)
        if relative <= tolerance:
            within += 1

    point = DynamicsPoint(
        churn_rate=churn_rate,
        n_samples=samples,
        mean_relative_error=float(np.mean(errors)) if errors else 0.0,
        max_relative_error=float(np.max(errors)) if errors else 0.0,
        availability=within / samples if samples else 0.0,
        mean_incremental_updates=(
            float(np.mean(event_updates)) if event_updates else 0.0
        ),
    )
    if telemetry.is_enabled():
        labels = {"churn_rate": f"{churn_rate:g}"}
        telemetry.gauge_set(
            "dynamics_mean_relative_error", point.mean_relative_error, **labels
        )
        telemetry.gauge_set(
            "dynamics_max_relative_error", point.max_relative_error, **labels
        )
        telemetry.gauge_set("dynamics_availability", point.availability, **labels)
        telemetry.gauge_set(
            "dynamics_incremental_updates",
            point.mean_incremental_updates,
            **labels,
        )
        telemetry.gauge_set(
            "dynamics_samples_total", float(point.n_samples), **labels
        )
    return point


def run_dynamics(
    churn_rates: list[float] | None = None,
    n_nodes: int = 24,
    bits: int = 16,
    key: int = 0x3A7,
    duration: float = 60.0,
    interval: float = 0.5,
    tolerance: float = 0.1,
    stale_after: float = 2.0,
    seed: int = 2007,
) -> DynamicsResult:
    """Sweep churn rates and measure continuous-COUNT accuracy.

    Parameters
    ----------
    churn_rates:
        Membership changes per virtual second (0 = stable baseline).
    n_nodes:
        Initial overlay size.
    duration:
        Measurement horizon per rate, in virtual seconds.
    interval:
        Continuous push period (also the sampling period).
    tolerance:
        Relative-error band counted as "available".
    """
    rates = churn_rates if churn_rates is not None else [0.0, 0.2, 0.5, 1.0]
    result = DynamicsResult(n_nodes=n_nodes)
    with telemetry.span(
        "experiment.dynamics", n=n_nodes, n_rates=len(rates), duration=duration
    ):
        for index, rate in enumerate(rates):
            with telemetry.span("experiment.dynamics.rate", churn_rate=rate):
                result.points.append(
                    _measure_one_rate(
                        rate, n_nodes, bits, key, duration, interval,
                        tolerance, stale_after, seed=seed + index,
                    )
                )
    return result

"""Churn overhead of the DAT scheme (paper Sec. 1/3.2 claims).

"Without maintaining explicit parent-child membership, it has very low
overhead during node arrival and departure." Concretely: the DAT tree is a
pure function of Chord finger state, so membership changes generate *only*
Chord's own maintenance traffic — zero tree-repair messages — and the tree
becomes consistent again as soon as stabilization has fixed the fingers.

This experiment runs a live protocol overlay on the simulator, applies a
churn schedule, and reports:

* maintenance messages per node per virtual second, by message kind
  (there are no DAT-maintenance kinds at all);
* rounds of stabilization until the implicit tree is valid again after
  each membership change.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.chord.idspace import IdSpace
from repro.chord.incremental import DatUpdateEngine
from repro.chord.network import ChordNetwork
from repro.chord.node import ChordConfig
from repro.chord.ring import StaticRing
from repro.core.builder import build_balanced_dat
from repro.core.tree import DatTree
from repro.errors import TreeError
from repro.sim.simnet import SimTransport
from repro.util.rng import ensure_rng
from repro.workloads.churn import ChurnKind, ChurnWorkload

__all__ = ["ChurnOverheadResult", "run_churn_overhead", "live_tree"]


def live_tree(network: ChordNetwork, key: int) -> DatTree:
    """The balanced DAT implied by the overlay's *live* finger tables.

    Unlike the static builders this uses whatever (possibly stale) fingers
    the protocol nodes currently hold — the actual tree the aggregation
    layer would use mid-churn.
    """
    ring = network.ideal_ring()
    root = ring.successor(key)
    parent: dict[int, int] = {}
    from repro.core.limiting import FingerLimiter
    from repro.core.parent import select_parent_balanced

    limiter = FingerLimiter.for_ring(network.space.bits, len(network.nodes))
    for ident, node in network.nodes.items():
        if ident == root:
            continue
        chosen = select_parent_balanced(node.finger_table(), root, limiter)
        if chosen is not None:
            parent[ident] = chosen
    return DatTree(root=root, parent=parent, key=key)


def _tree_is_valid(network: ChordNetwork, key: int) -> bool:
    """Does the live tree connect every current member to the root?"""
    try:
        tree = live_tree(network, key)
        tree.validate()
    except TreeError:
        return False
    return tree.n_nodes == len(network.nodes)


@dataclass
class ChurnOverheadResult:
    """Measured maintenance economics under churn."""

    n_nodes_initial: int
    n_events: int
    duration: float
    #: total protocol messages during the churn phase.
    total_messages: int = 0
    #: messages per node per virtual second.
    messages_per_node_second: float = 0.0
    #: message-kind breakdown (note: no DAT tree-repair kinds exist).
    by_kind: dict[str, int] = field(default_factory=dict)
    #: per-event stabilization rounds until the live tree was valid again.
    repair_rounds: list[int] = field(default_factory=list)
    #: per-event finger entries rewritten by the incremental model mirror.
    incremental_finger_updates: list[int] = field(default_factory=list)
    #: per-event parent entries recomputed by the incremental model mirror.
    incremental_parent_updates: list[int] = field(default_factory=list)
    #: events whose mirrored tree needed a full rebuild (root handover).
    incremental_rebuilds: int = 0

    def mean_repair_rounds(self) -> float:
        """Average rounds to a valid tree after a membership change."""
        return float(np.mean(self.repair_rounds)) if self.repair_rounds else 0.0

    def mean_incremental_updates(self) -> float:
        """Average finger+parent entries touched per event by the model.

        The analytical counterpart of the message counts: the converged-ring
        mirror (:class:`~repro.chord.incremental.DatUpdateEngine`) repairs
        the tree with this many entry updates — O(log n) expected — where
        the old path rebuilt all ``n*bits`` of them.
        """
        touched = [
            fingers + parents
            for fingers, parents in zip(
                self.incremental_finger_updates, self.incremental_parent_updates
            )
        ]
        return float(np.mean(touched)) if touched else 0.0

    def dat_maintenance_messages(self) -> int:
        """Messages whose kind belongs to DAT tree maintenance: always 0.

        The protocol has no such kinds — the claim the paper makes. Any
        ``agg_*`` traffic is data-plane aggregation, not membership repair.
        """
        return sum(
            count
            for kind, count in self.by_kind.items()
            if kind.startswith("dat_maint")
        )


def run_churn_overhead(
    n_nodes: int = 32,
    bits: int = 16,
    n_churn_events: int = 10,
    key: int = 0x1234,
    seed: int = 2007,
    max_repair_rounds: int = 200,
) -> ChurnOverheadResult:
    """Run the churn experiment on a live simulated overlay."""
    with telemetry.span(
        "experiment.churn", n=n_nodes, events=n_churn_events, seed=seed
    ):
        return _run_churn_overhead(
            n_nodes, bits, n_churn_events, key, seed, max_repair_rounds
        )


def _run_churn_overhead(
    n_nodes: int,
    bits: int,
    n_churn_events: int,
    key: int,
    seed: int,
    max_repair_rounds: int,
) -> ChurnOverheadResult:
    rng = ensure_rng(seed)
    space = IdSpace(bits)
    key = space.wrap(key)
    transport = SimTransport(rng=rng, hotspot_name="churn.transport")
    config = ChordConfig(stabilize_interval=0.5, fix_fingers_interval=0.1)
    network = ChordNetwork(space, transport, config)

    # Bootstrap and converge the initial overlay.
    initial_ids = sorted(
        int(i) for i in rng.choice(space.size, size=n_nodes, replace=False)
    )
    for ident in initial_ids:
        network.add_node(ident)
        network.settle(2.0)
    network.settle_until_converged()
    # Let fingers fully populate before measuring.
    for node in network.nodes.values():
        node.fix_all_fingers()
    network.settle(5.0)

    transport.stats.reset()
    start_time = transport.now()

    # Converged-ring mirror maintained incrementally alongside the live
    # overlay: quantifies the analytical repair cost (finger + parent
    # entries touched) for the same event sequence.
    mirror = DatUpdateEngine(StaticRing(space, sorted(network.nodes)))
    mirror.track(key)

    workload = ChurnWorkload(
        duration=float(n_churn_events),
        join_rate=0.5,
        leave_rate=0.5,
        seed=rng,
    )
    events = workload.generate()[:n_churn_events]
    repair_rounds: list[int] = []
    finger_updates: list[int] = []
    parent_updates: list[int] = []
    rebuilds = 0

    for event in events:
        if event.kind is ChurnKind.JOIN:
            candidate = int(rng.integers(0, space.size))
            while candidate in network.nodes:
                candidate = int(rng.integers(0, space.size))
            network.add_node(candidate)
            report = mirror.apply(event.kind.value, candidate)
        else:
            victims = list(network.nodes)
            if len(victims) <= 2:
                continue
            victim = victims[int(rng.integers(0, len(victims)))]
            network.remove_node(victim, graceful=event.kind is ChurnKind.LEAVE)
            report = mirror.apply(event.kind.value, victim)
        finger_updates.append(report.finger_updates)
        parent_updates.append(report.parent_updates)
        rebuilds += len(report.rebuilt_keys)

        # Count stabilization rounds until the live tree is valid again.
        rounds = 0
        while not _tree_is_valid(network, key) and rounds < max_repair_rounds:
            network.settle(config.stabilize_interval)
            rounds += 1
        repair_rounds.append(rounds)
        # Unit buckets via the default histogram override — repair completes
        # in a handful of stabilization rounds, so 1-wide bins resolve it.
        telemetry.observe("churn_repair_rounds", float(rounds))

    elapsed = transport.now() - start_time
    total = transport.stats.total_messages()
    per_node_second = (
        total / (len(network.nodes) * elapsed) if elapsed > 0 else 0.0
    )
    by_kind = transport.stats.by_kind()
    if telemetry.is_enabled():
        telemetry.gauge_set("churn_total_messages", float(total))
        telemetry.gauge_set("churn_messages_per_node_second", per_node_second)
        telemetry.gauge_set(
            "churn_mean_repair_rounds",
            float(np.mean(repair_rounds)) if repair_rounds else 0.0,
        )
        telemetry.gauge_set("churn_incremental_rebuilds", float(rebuilds))
        for kind, count in sorted(by_kind.items()):
            telemetry.count("churn_messages_total", float(count), kind=kind)
    return ChurnOverheadResult(
        n_nodes_initial=n_nodes,
        n_events=len(events),
        duration=elapsed,
        total_messages=total,
        messages_per_node_second=per_node_second,
        by_kind=by_kind,
        repair_rounds=repair_rounds,
        incremental_finger_updates=finger_updates,
        incremental_parent_updates=parent_updates,
        incremental_rebuilds=rebuilds,
    )

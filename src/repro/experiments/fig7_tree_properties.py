"""Fig. 7 — DAT tree properties vs network size (paper Sec. 5.2).

Four configurations per metric, exactly as the paper plots:

* basic DAT, random identifiers        (max branching grows ~ log n, worst)
* basic DAT, identifier probing        (still log-scale, smaller constant)
* balanced DAT, random identifiers     (log-scale: gap ratio is O(log n))
* balanced DAT, identifier probing     (max branching ~ constant ~4)

Metrics: maximum branching factor (7a), average branching factor over
internal nodes (7b), plus tree height (used by the theory-validation bench).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import telemetry
from repro.chord.fastbuild import fast_tree_stats
from repro.chord.idgen import make_assigner
from repro.chord.idspace import IdSpace
from repro.core.builder import DatScheme
from repro.util.rng import spawn_seeds

__all__ = ["Fig7Point", "run_fig7_tree_properties", "POWER_OF_TWO_SIZES", "CONFIGS"]

#: The paper's x-axis: 16 .. 8192 (powers of two).
POWER_OF_TWO_SIZES = [16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192]

#: (scheme, id-strategy) combinations of Fig. 7.
CONFIGS: list[tuple[str, str]] = [
    ("basic", "random"),
    ("basic", "probing"),
    ("balanced", "random"),
    ("balanced", "probing"),
]


@dataclass(frozen=True)
class Fig7Point:
    """One measured configuration at one network size (seed-averaged)."""

    scheme: str
    id_strategy: str
    n_nodes: int
    max_branching: float
    avg_branching: float
    height: float
    n_seeds: int

    def as_row(self) -> dict[str, float | str]:
        return {
            "scheme": self.scheme,
            "ids": self.id_strategy,
            "n": self.n_nodes,
            "max_branching": self.max_branching,
            "avg_branching": self.avg_branching,
            "height": self.height,
        }


def measure_tree(
    scheme: str,
    id_strategy: str,
    n_nodes: int,
    bits: int,
    seed: int,
    key: int = 0xA5A5A5,
) -> tuple[int, float, int]:
    """(max branching, avg branching, height) of one constructed tree.

    Array-native end to end: the statistics come from
    :func:`~repro.chord.fastbuild.fast_tree_stats` without materializing a
    per-node tree object, so a single point scales to 10^5-10^6 nodes.
    Bit-identical to ``build_dat(..., fast=True).stats()`` (the fastbuild
    equivalence discipline, asserted in
    ``tests/property/test_prop_scale.py``).
    """
    space = IdSpace(bits)
    ring = make_assigner(id_strategy).build_ring(space, n_nodes, rng=seed)
    stats = fast_tree_stats(ring, space.wrap(key), scheme=DatScheme(scheme))
    return stats.max_branching, stats.avg_branching, stats.height


def run_fig7_tree_properties(
    sizes: list[int] | None = None,
    bits: int = 32,
    n_seeds: int = 3,
    master_seed: int = 2007,
    configs: list[tuple[str, str]] | None = None,
) -> list[Fig7Point]:
    """Regenerate the Fig. 7 series.

    Returns one point per (configuration, size), averaged over seeds.
    """
    sizes = sizes if sizes is not None else POWER_OF_TWO_SIZES
    configs = configs if configs is not None else CONFIGS
    seeds = spawn_seeds(master_seed, n_seeds)
    points: list[Fig7Point] = []
    with telemetry.span(
        "experiment.fig7", n_configs=len(configs), n_sizes=len(sizes)
    ):
        for scheme, id_strategy in configs:
            for n_nodes in sizes:
                samples = [
                    measure_tree(scheme, id_strategy, n_nodes, bits, seed)
                    for seed in seeds
                ]
                point = Fig7Point(
                    scheme=scheme,
                    id_strategy=id_strategy,
                    n_nodes=n_nodes,
                    max_branching=sum(s[0] for s in samples) / n_seeds,
                    avg_branching=sum(s[1] for s in samples) / n_seeds,
                    height=sum(s[2] for s in samples) / n_seeds,
                    n_seeds=n_seeds,
                )
                points.append(point)
                if telemetry.is_enabled():
                    labels = {
                        "scheme": scheme, "ids": id_strategy, "n": n_nodes
                    }
                    telemetry.gauge_set(
                        "fig7_max_branching", point.max_branching, **labels
                    )
                    telemetry.gauge_set(
                        "fig7_avg_branching", point.avg_branching, **labels
                    )
                    telemetry.gauge_set("fig7_height", point.height, **labels)
    return points

"""Fig. 8 — load balance of aggregation messages (paper Sec. 5.3).

(a) Per-node aggregation-message distribution by node rank at n = 512 for
    three schemes: centralized (Chord-routed, no in-network aggregation),
    basic DAT, balanced DAT. Paper anchors: centralized root ~511 messages;
    basic max ~24; balanced max ~4.

(b) Imbalance factor (max / average messages) vs network size in
    [100, 1000]: centralized grows ~linearly, basic ~log
    (paper: 4.2 @100 -> 8.5 @1000), balanced ~constant (1.9 - 2.0).

Loads count messages sent + received per node in one aggregation round
(DESIGN.md Sec. 5 records why this reproduces the paper's numbers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import telemetry
from repro.baselines.centralized import centralized_routed_loads
from repro.chord.idgen import make_assigner
from repro.chord.idspace import IdSpace
from repro.core.analysis import imbalance_factor, load_distribution
from repro.core.builder import build_balanced_dat, build_basic_dat
from repro.util.rng import spawn_seeds

__all__ = [
    "Fig8Distribution",
    "Fig8ImbalancePoint",
    "run_fig8a_message_distribution",
    "run_fig8b_imbalance_sweep",
]


@dataclass
class Fig8Distribution:
    """Rank-ordered per-node loads for the three schemes at one size."""

    n_nodes: int
    centralized: list[int] = field(default_factory=list)
    basic: list[int] = field(default_factory=list)
    balanced: list[int] = field(default_factory=list)

    def summary(self) -> dict[str, float]:
        """Max/imbalance summary for quick assertions and tables."""
        return {
            "n": self.n_nodes,
            "centralized_max": max(self.centralized),
            "basic_max": max(self.basic),
            "balanced_max": max(self.balanced),
            "centralized_imbalance": imbalance_factor(self.centralized),
            "basic_imbalance": imbalance_factor(self.basic),
            "balanced_imbalance": imbalance_factor(self.balanced),
        }


@dataclass(frozen=True)
class Fig8ImbalancePoint:
    """Seed-averaged imbalance factors at one network size."""

    n_nodes: int
    centralized: float
    basic: float
    balanced: float

    def as_row(self) -> dict[str, float]:
        return {
            "n": self.n_nodes,
            "centralized": self.centralized,
            "basic": self.basic,
            "balanced": self.balanced,
        }


def _scheme_loads(
    n_nodes: int, bits: int, seed: int, id_strategy: str, key: int
) -> tuple[dict[int, int], dict[int, int], dict[int, int]]:
    """(centralized, basic, balanced) per-node loads on one ring."""
    space = IdSpace(bits)
    ring = make_assigner(id_strategy).build_ring(space, n_nodes, rng=seed)
    tables = ring.all_finger_tables()
    rendezvous = space.wrap(key)
    centralized = centralized_routed_loads(ring, rendezvous, tables=tables)
    basic = build_basic_dat(ring, rendezvous, tables=tables).message_loads()
    balanced = build_balanced_dat(ring, rendezvous, tables=tables).message_loads()
    return centralized, basic, balanced


def _record_scheme_loads(scheme: str, loads: dict[int, int]) -> None:
    """Publish one scheme's per-node loads through the hotspot accountants.

    The experiment's analytic loads flow into the same accounting path the
    transports feed message-by-message (attributed as sends), so the
    Prometheus/JSONL export reconstructs the Fig. 8 distribution exactly —
    the "reproducible from exported telemetry alone" property the
    integration test asserts.
    """
    tel = telemetry.active()
    if tel is None:
        return
    accountant = tel.hotspots(f"fig8.{scheme}")
    for node, load in loads.items():
        accountant.add_load(node, sent=load)
    accountant.sample(tel.now())
    telemetry.gauge_set("fig8a_imbalance", accountant.imbalance(), scheme=scheme)
    telemetry.gauge_set("fig8a_max_load", float(accountant.max_load()), scheme=scheme)


def run_fig8a_message_distribution(
    n_nodes: int = 512,
    bits: int = 32,
    seed: int = 2007,
    id_strategy: str = "probing",
    key: int = 0xA5A5A5,
) -> Fig8Distribution:
    """Regenerate the Fig. 8(a) rank-ordered distributions."""
    with telemetry.span("experiment.fig8a", n=n_nodes, seed=seed):
        centralized, basic, balanced = _scheme_loads(
            n_nodes, bits, seed, id_strategy, key
        )
        _record_scheme_loads("centralized", centralized)
        _record_scheme_loads("basic", basic)
        _record_scheme_loads("balanced", balanced)
        return Fig8Distribution(
            n_nodes=n_nodes,
            centralized=[load for _node, load in load_distribution(centralized)],
            basic=[load for _node, load in load_distribution(basic)],
            balanced=[load for _node, load in load_distribution(balanced)],
        )


def run_fig8b_imbalance_sweep(
    sizes: list[int] | None = None,
    bits: int = 32,
    n_seeds: int = 3,
    master_seed: int = 2007,
    id_strategy: str = "probing",
    key: int = 0xA5A5A5,
) -> list[Fig8ImbalancePoint]:
    """Regenerate the Fig. 8(b) imbalance-vs-size sweep."""
    sizes = sizes if sizes is not None else [100, 200, 300, 400, 500, 600, 700, 800, 900, 1000]
    seeds = spawn_seeds(master_seed, n_seeds)
    points: list[Fig8ImbalancePoint] = []
    with telemetry.span("experiment.fig8b", n_sizes=len(sizes), n_seeds=n_seeds):
        for n_nodes in sizes:
            samples = [
                tuple(
                    imbalance_factor(loads)
                    for loads in _scheme_loads(n_nodes, bits, seed, id_strategy, key)
                )
                for seed in seeds
            ]
            point = Fig8ImbalancePoint(
                n_nodes=n_nodes,
                centralized=sum(s[0] for s in samples) / n_seeds,
                basic=sum(s[1] for s in samples) / n_seeds,
                balanced=sum(s[2] for s in samples) / n_seeds,
            )
            points.append(point)
            if telemetry.is_enabled():
                for scheme, value in point.as_row().items():
                    if scheme == "n":
                        continue
                    telemetry.gauge_set(
                        "fig8b_imbalance", value, scheme=scheme, n=n_nodes
                    )
    return points

"""Typed request/reply envelopes: kind registry, dispatch, error replies.

Before this layer, every host re-implemented the same three fragments of
RPC plumbing by hand: a ``dict`` of message-kind upcalls with ad-hoc
dispatch, ``reply_to`` correlation sprinkled through service code, and no
uniform way to say "that request failed". This module implements each of
them once:

* :class:`UpcallRegistry` — the message-kind registry hosts expose as
  ``host.upcalls``. Services still assign handlers dict-style
  (``host.upcalls["agg_push"] = fn``); hosts dispatch with one call.
* :func:`error_reply` / :func:`is_error_reply` — the shared error
  envelope (kind ``net_error``): any handler can answer a request with a
  structured failure instead of silence, and
  :class:`~repro.net.client.RpcClient` routes it to the caller's
  ``on_error`` continuation.
* :class:`DeferredResponder` — at-most-once execution for requests whose
  reply is produced later (a subtree gather, a multi-hop walk). It
  deduplicates retransmitted requests while the work is in flight and
  replays the cached reply when a duplicate arrives after completion, so
  retrying callers never trigger the work twice.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, Iterator, MutableMapping, Optional

from repro.sim.messages import Message
from repro.sim.transport import Transport
from repro.telemetry.spans import SpanBase

__all__ = [
    "Upcall",
    "UpcallRegistry",
    "ERROR_KIND",
    "error_reply",
    "is_error_reply",
    "DeferredResponder",
]

Upcall = Callable[[Message], Optional[Message]]

#: Message kind of the shared error envelope. It is always a response
#: (``reply_to`` set); the payload carries ``error`` (a short code) and
#: ``detail`` (human-readable context).
ERROR_KIND = "net_error"


def error_reply(request: Message, error: str, detail: str = "") -> Message:
    """Build the standard error response to ``request``."""
    return request.response(kind=ERROR_KIND, error=error, detail=detail)


def is_error_reply(message: Message) -> bool:
    """True when ``message`` is a :data:`ERROR_KIND` error envelope."""
    return message.kind == ERROR_KIND and message.is_response


class UpcallRegistry(MutableMapping[str, Upcall]):
    """Message-kind registry with one shared dispatch implementation.

    A drop-in replacement for the plain ``dict[str, Upcall]`` hosts used
    to hold: services keep assigning ``registry["agg_push"] = handler``.
    Hosts call :meth:`dispatch` instead of open-coding the lookup; the
    registry owns the unknown-kind policy (drop, like the UDP prototype)
    and leaves handler exceptions to propagate — a handler bug should
    surface loudly in the simulator, exactly as before.
    """

    def __init__(self) -> None:
        self._handlers: dict[str, Upcall] = {}

    # -- MutableMapping surface -------------------------------------------

    def __getitem__(self, kind: str) -> Upcall:
        return self._handlers[kind]

    def __setitem__(self, kind: str, handler: Upcall) -> None:
        self._handlers[kind] = handler

    def __delitem__(self, kind: str) -> None:
        del self._handlers[kind]

    def __iter__(self) -> Iterator[str]:
        return iter(self._handlers)

    def __len__(self) -> int:
        return len(self._handlers)

    # -- dispatch ----------------------------------------------------------

    def dispatch(self, message: Message) -> Message | None:
        """Route ``message`` to its kind's handler.

        Unknown kinds are dropped (``None``) — UDP semantics: the caller's
        deadline, if any, surfaces the mismatch as a timeout.
        """
        handler = self._handlers.get(message.kind)
        if handler is None:
            return None
        return handler(message)

    def knows(self, kind: str) -> bool:
        """True when a handler is registered for ``kind``."""
        return kind in self._handlers


class DeferredResponder:
    """At-most-once deferred replies for retried requests.

    A node answering a request only after asynchronous work (gathering
    from its subtree, walking successors) must tolerate the caller's
    retransmissions: a duplicate request while the work is running must
    not start it again, and a duplicate after completion must re-send the
    cached reply (the first one was evidently lost). Both behaviors live
    here so no service carries its own pending-request dict.

    Completed replies are cached in insertion order and evicted beyond
    ``capacity`` — late duplicates of ancient rounds simply go
    unanswered, like any lost datagram.
    """

    def __init__(self, transport: Transport, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.transport = transport
        self.capacity = capacity
        self._inflight: set[Hashable] = set()
        self._done: OrderedDict[Hashable, Message] = OrderedDict()
        self._spans: dict[Hashable, SpanBase] = {}

    def begin(self, key: Hashable, request: Message) -> bool:
        """Claim ``key`` for execution.

        Returns ``True`` when the caller should run the work. Returns
        ``False`` for duplicates: in-flight duplicates are dropped (the
        eventual :meth:`complete` answers every retransmission, because
        retries reuse the request's ``msg_id``), and already-completed
        duplicates get the cached reply re-sent immediately.
        """
        if key in self._inflight:
            return False
        cached = self._done.get(key)
        if cached is not None:
            self.transport.send(cached)
            return False
        self._inflight.add(key)
        return True

    def adopt(self, key: Hashable, span: SpanBase) -> SpanBase:
        """Attach the span covering ``key``'s deferred work.

        :meth:`complete` threads the span's trace context into the reply
        — deferred replies rejoin their originating trace — and finishes
        it; :meth:`abandon` finishes it as abandoned. Returns the span
        for chaining.
        """
        self._spans[key] = span
        return span

    def complete(self, key: Hashable, response: Message) -> None:
        """Send ``response`` and cache it for future duplicates.

        An adopted span's trace context is stamped onto the reply before
        it is cached, so replays of the cached reply carry it too.
        """
        self._inflight.discard(key)
        span = self._spans.pop(key, None)
        if span is not None:
            span.propagate(response)
            span.finish()
        self._done[key] = response
        while len(self._done) > self.capacity:
            self._done.popitem(last=False)
        self.transport.send(response)

    def abandon(self, key: Hashable) -> None:
        """Drop an in-flight claim without replying (e.g. on teardown)."""
        self._inflight.discard(key)
        span = self._spans.pop(key, None)
        if span is not None:
            span.finish(abandoned=True)

    def pending(self) -> int:
        """Number of in-flight claims (useful in tests)."""
        return len(self._inflight)

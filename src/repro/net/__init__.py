"""repro.net — the session/RPC plane between protocol services and transports.

The protocol layers (DAT aggregation, MAAN range queries, Chord routing)
used to re-implement RPC plumbing by hand: per-service pending-request
dicts, ad-hoc timeout callbacks, hand-rolled ``reply_to`` correlation.
This package implements that machinery once, directly above
:mod:`repro.sim.transport`:

* :class:`~repro.net.retry.RetryPolicy` — deadline, bounded attempts,
  exponential backoff with deterministic jitter (one policy object per
  call path; :data:`DEFAULT_POLICY` is bit-identical to the historical
  single-attempt behavior, :data:`UNBOUNDED_POLICY` to the historical
  wait-forever paths).
* :class:`~repro.net.client.RpcClient` / :class:`~repro.net.client.Peer`
  — per-node call surface implementing the retry loop, same-``msg_id``
  retransmission, local first-hop dispatch, and per-call telemetry.
* :class:`~repro.net.envelope.UpcallRegistry`,
  :func:`~repro.net.envelope.error_reply`,
  :class:`~repro.net.envelope.DeferredResponder` — message-kind dispatch,
  the shared error envelope, and at-most-once deferred replies.
* :func:`~repro.net.fanout.gather` / :class:`~repro.net.fanout.Batcher`
  — parallel collection rounds and same-destination push coalescing.

See ``docs/NET.md`` for the layer diagram and migration notes.
"""

from repro.net.client import Peer, RpcClient
from repro.net.envelope import (
    ERROR_KIND,
    DeferredResponder,
    Upcall,
    UpcallRegistry,
    error_reply,
    is_error_reply,
)
from repro.net.fanout import BATCH_KIND, Batcher, gather, install_batch_unwrapper
from repro.net.retry import DEFAULT_POLICY, UNBOUNDED_POLICY, RetryPolicy

__all__ = [
    "RetryPolicy",
    "DEFAULT_POLICY",
    "UNBOUNDED_POLICY",
    "RpcClient",
    "Peer",
    "Upcall",
    "UpcallRegistry",
    "ERROR_KIND",
    "error_reply",
    "is_error_reply",
    "DeferredResponder",
    "gather",
    "Batcher",
    "BATCH_KIND",
    "install_batch_unwrapper",
]

"""Per-node RPC client: one retry/deadline implementation for every layer.

:class:`RpcClient` wraps a transport for one node. Protocol services no
longer touch ``Transport.call`` (datlint rule DAT009 flags that); they
hold a client and issue :meth:`RpcClient.call`, which layers a
:class:`~repro.net.retry.RetryPolicy` over the transport's pending-reply
table:

* with the default policy (one attempt, transport deadline) the call is
  byte-for-byte what ``Transport.call`` did — one scheduled expiry, one
  send — so seeded simulations replay identically across the migration;
* with a retrying policy, expired attempts are re-sent with the **same**
  ``msg_id`` (UDP retransmission semantics): a reply to any attempt
  completes the call, and receivers can deduplicate by request id via
  :class:`~repro.net.envelope.DeferredResponder`;
* backoff delays come from the policy's deterministic-jitter schedule,
  drawn from a per-node generator seeded with the node identifier.

Multi-hop conversations (recursive Chord lookups, MAAN successor walks)
fit the same shape: the request threads its own ``msg_id`` through the
forwarding path as ``payload["token"]`` and the terminal node answers
with ``reply_to=token`` — correlation is still the transport's pending
table, deadline and retries are still the policy. Pass ``send=`` to
short-circuit the first hop locally (a node routing through itself must
not pay a network delay it never paid before).

Every call is observable with zero service-side instrumentation:
``rpc_calls_total`` / ``rpc_retries_total`` / ``rpc_timeouts_total`` /
``rpc_errors_total`` / ``rpc_replies_total`` counters, labeled by message
kind, land in :mod:`repro.telemetry` whenever a runtime is installed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import telemetry
from repro.net.envelope import is_error_reply
from repro.net.retry import DEFAULT_POLICY, RetryPolicy
from repro.sim.messages import Message
from repro.sim.transport import Transport
from repro.util.rng import ensure_rng

__all__ = ["RpcClient", "Peer"]

ReplyFn = Callable[[Message], None]
FailFn = Callable[[Message], None]
SendFn = Callable[[Message], None]


class RpcClient:
    """The RPC surface of one node over a shared transport.

    Parameters
    ----------
    transport:
        Message substrate (simulated, UDP, or in-process).
    ident:
        The owning node's identifier — stamped as ``source`` on messages
        built via :meth:`request` and used to seed the jitter stream.
    policy:
        Default :class:`RetryPolicy` for calls that don't pass their own.
    rng:
        Seed or generator for backoff jitter; defaults to a generator
        seeded with ``ident`` so retry schedules are deterministic
        per-node and independent of every other random stream.
    """

    def __init__(
        self,
        transport: Transport,
        ident: int,
        policy: RetryPolicy | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        self.transport = transport
        self.ident = ident
        self.policy = policy if policy is not None else DEFAULT_POLICY
        self._rng = ensure_rng(rng if rng is not None else ident)

    # ------------------------------------------------------------------ #
    # Message construction
    # ------------------------------------------------------------------ #

    def request(self, kind: str, destination: int, **payload: object) -> Message:
        """A request message from this node (source stamped)."""
        return Message(
            kind=kind, source=self.ident, destination=destination, payload=dict(payload)
        )

    def peer(self, ident: int) -> "Peer":
        """A :class:`Peer` handle bound to one destination."""
        return Peer(client=self, ident=ident)

    # ------------------------------------------------------------------ #
    # Wire operations
    # ------------------------------------------------------------------ #

    def send(self, message: Message) -> None:
        """Fire-and-forget passthrough (no reply expected).

        With tracing enabled, the current span's trace context is threaded
        into the payload (unless the caller already attached one) — every
        service-level send is traceable with zero service-side plumbing.
        """
        telemetry.propagate_current(message)
        self.transport.send(message)

    def call(
        self,
        message: Message,
        on_reply: ReplyFn,
        on_timeout: FailFn | None = None,
        *,
        on_error: FailFn | None = None,
        policy: RetryPolicy | None = None,
        send: SendFn | None = None,
    ) -> None:
        """Issue ``message`` as an RPC under ``policy`` (or the default).

        ``on_reply(reply)`` fires with the correlated response;
        ``on_timeout(message)`` fires once, after the final attempt's
        deadline expires. A structured :data:`~repro.net.envelope.ERROR_KIND`
        reply is routed to ``on_error`` (falling back to ``on_timeout``)
        instead of ``on_reply``. ``send`` overrides the wire operation for
        the first and every retried attempt — pass a local dispatch
        function when the first hop is this node itself.
        """
        active = policy if policy is not None else self.policy
        send_fn: SendFn = send if send is not None else self.transport.send
        attempt = 1
        telemetry.count("rpc_calls_total", kind=message.kind)
        # Trace context is attached once, before the first attempt: retried
        # attempts re-send the *same* message object (same msg_id, same
        # context), so retransmissions stay in their originating trace.
        telemetry.propagate_current(message)

        def deliver(reply: Message) -> None:
            if is_error_reply(reply):
                telemetry.count("rpc_errors_total", kind=message.kind)
                fail = on_error if on_error is not None else on_timeout
                if fail is not None:
                    fail(reply)
                return
            telemetry.count("rpc_replies_total", kind=message.kind)
            on_reply(reply)

        def expire(_request: Message) -> None:
            nonlocal attempt
            if attempt >= active.max_attempts:
                telemetry.count("rpc_timeouts_total", kind=message.kind)
                if on_timeout is not None:
                    on_timeout(message)
                return
            attempt += 1
            telemetry.count("rpc_retries_total", kind=message.kind)
            delay = active.backoff(attempt - 1, self._rng)
            if delay > 0:
                self.transport.schedule(delay, attempt_once)
            else:
                attempt_once()

        def attempt_once() -> None:
            self.transport.expect(
                message,
                deliver,
                on_timeout=expire,
                timeout=active.attempt_timeout(self.transport.default_timeout),
            )
            send_fn(message)

        attempt_once()

    def call_peer(
        self,
        destination: int,
        kind: str,
        payload: dict[str, object],
        on_reply: ReplyFn,
        on_timeout: FailFn | None = None,
        *,
        policy: RetryPolicy | None = None,
    ) -> Message:
        """Convenience: build the request and :meth:`call` it; returns it."""
        message = Message(
            kind=kind, source=self.ident, destination=destination, payload=payload
        )
        self.call(message, on_reply, on_timeout, policy=policy)
        return message

    def cancel_all(self) -> None:
        """Cancel every pending call this node originated (teardown path)."""
        self.transport.cancel_calls(self.ident)


@dataclass(frozen=True)
class Peer:
    """One remote node as seen through a client (destination pre-bound)."""

    client: RpcClient
    ident: int

    def request(self, kind: str, **payload: object) -> Message:
        """A request message addressed to this peer."""
        return self.client.request(kind, self.ident, **payload)

    def call(
        self,
        kind: str,
        payload: dict[str, object],
        on_reply: ReplyFn,
        on_timeout: FailFn | None = None,
        *,
        policy: RetryPolicy | None = None,
    ) -> Message:
        """RPC to this peer (see :meth:`RpcClient.call`)."""
        return self.client.call_peer(
            self.ident, kind, payload, on_reply, on_timeout, policy=policy
        )

    def send(self, kind: str, **payload: object) -> None:
        """Fire-and-forget message to this peer."""
        self.client.send(self.request(kind, **payload))

"""Retry/backoff policy for the RPC plane.

One :class:`RetryPolicy` value describes everything the request path may
do on loss: the per-attempt deadline, how many attempts to make before
giving up, and the exponential-backoff-with-jitter schedule between
attempts. The default policy (``RetryPolicy()``) is a single attempt with
the transport's default deadline — exactly what the hand-rolled
``Transport.call`` sites did before this layer existed, so migrating a
caller onto :class:`~repro.net.client.RpcClient` with the default policy
is behavior-preserving.

Backoff jitter is deterministic: the client draws it from a
:mod:`repro.util.rng` generator seeded per node, so a seeded simulation
replays the identical retry schedule run-to-run (the same property datlint
rule DAT001 enforces everywhere else). Bounded attempts plus exponential
backoff are also the retry-storm guard — under total loss a call makes at
most ``max_attempts`` sends, spaced increasingly far apart, instead of
hammering the network on a fixed period.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["RetryPolicy", "DEFAULT_POLICY", "UNBOUNDED_POLICY"]

#: Hard ceiling on attempts — a policy asking for more is a bug, not a
#: robustness setting (the storm guard of last resort).
_MAX_ATTEMPTS_CAP = 64


@dataclass(frozen=True)
class RetryPolicy:
    """How one logical RPC behaves on the wire.

    Parameters
    ----------
    timeout:
        Per-attempt reply deadline in transport seconds. ``None`` adopts
        the transport's ``default_timeout``; ``math.inf`` disables the
        deadline entirely (the call waits forever — the historical
        behavior of the DAT on-demand and MAAN walk paths).
    max_attempts:
        Total sends before the call fails over to ``on_timeout``. ``1``
        means no retries.
    backoff_base:
        Extra delay before retry ``k`` (1-based): ``base * factor**(k-1)``,
        capped at ``backoff_max``. ``0.0`` retries immediately on expiry.
    backoff_factor:
        Exponential growth factor of the backoff schedule.
    backoff_max:
        Upper bound on any single backoff delay.
    jitter:
        Symmetric jitter fraction in ``[0, 1]``: each backoff delay is
        scaled by a deterministic factor in ``[1 - jitter, 1 + jitter]``
        drawn from the client's seeded generator (decorrelates retry
        storms across nodes without breaking replay determinism).
    """

    timeout: float | None = None
    max_attempts: int = 1
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1 or self.max_attempts > _MAX_ATTEMPTS_CAP:
            raise ValueError(
                f"max_attempts must be in [1, {_MAX_ATTEMPTS_CAP}], "
                f"got {self.max_attempts}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_max < 0:
            raise ValueError(f"backoff_max must be >= 0, got {self.backoff_max}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    @property
    def unbounded(self) -> bool:
        """True when attempts never expire (no deadline is scheduled)."""
        return self.timeout is not None and math.isinf(self.timeout)

    def attempt_timeout(self, transport_default: float) -> float:
        """The per-attempt deadline, resolving ``None`` to the transport's."""
        return transport_default if self.timeout is None else self.timeout

    def backoff(self, retry: int, rng: np.random.Generator) -> float:
        """Delay before 1-based retry number ``retry`` (deterministic).

        Consumes one draw from ``rng`` only when ``jitter`` is non-zero,
        so jitter-free policies leave the caller's random stream untouched.
        """
        if retry < 1:
            raise ValueError(f"retry must be >= 1, got {retry}")
        if self.backoff_base <= 0.0:
            return 0.0
        delay = min(
            self.backoff_base * self.backoff_factor ** (retry - 1),
            self.backoff_max,
        )
        if self.jitter > 0.0:
            delay *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return max(delay, 0.0)

    def schedule(self, rng: np.random.Generator) -> list[float]:
        """The full backoff schedule (one delay per retry) — for tests."""
        return [self.backoff(k, rng) for k in range(1, self.max_attempts)]


#: Single attempt, transport-default deadline: byte-for-byte the behavior
#: of a bare ``Transport.call`` before the net layer existed.
DEFAULT_POLICY = RetryPolicy()

#: Single attempt that never expires — the historical semantics of the DAT
#: on-demand round and the MAAN walk (no deadline was ever scheduled).
UNBOUNDED_POLICY = RetryPolicy(timeout=math.inf)

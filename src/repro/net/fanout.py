"""Fan-out primitives: parallel gather rounds and same-destination batching.

Two traffic shapes dominate the aggregation protocols:

* **on-demand collection** — a node asks each child for a partial result
  and continues when every child has answered (or given up). That is
  :func:`gather`: N concurrent :meth:`~repro.net.client.RpcClient.call`
  invocations sharing one completion continuation.
* **continuous push** — every interval each node pushes its state one hop
  up the tree. Pushes to the same parent inside one flush window can ride
  in a single datagram; that is :class:`Batcher`, the continuous-path
  hot-path optimisation the ROADMAP's production-scale goal calls for.
  Batching is strictly opt-in: a window of ``0`` degenerates to immediate
  sends so the default message economics are untouched.

Batched messages travel inside a ``net_batch`` envelope whose payload is
the JSON encoding of each queued message; the receiving host unwraps the
envelope (see :func:`install_batch_unwrapper`) and dispatches the inner
messages exactly as if they had arrived one by one.
"""

from __future__ import annotations

from typing import Callable, MutableMapping

from repro import telemetry
from repro.net.client import RpcClient
from repro.net.envelope import Upcall
from repro.net.retry import RetryPolicy
from repro.sim.messages import Message, decode_message, encode_message
from repro.sim.transport import Transport

__all__ = ["gather", "Batcher", "BATCH_KIND", "install_batch_unwrapper"]

GatherDone = Callable[[dict[int, Message], list[Message]], None]

#: Message kind of the batch envelope produced by :class:`Batcher`.
BATCH_KIND = "net_batch"


def gather(
    client: RpcClient,
    messages: list[Message],
    on_complete: GatherDone,
    *,
    policy: RetryPolicy | None = None,
) -> None:
    """Issue every request concurrently; continue when all have settled.

    ``on_complete(replies, failed)`` fires exactly once, when each request
    has either produced a reply (``replies[destination]``) or exhausted its
    policy (collected in ``failed``). Under an unbounded policy a lost
    reply never settles — the round simply stays open, which is the
    historical hang-on-loss semantics of the DAT on-demand path.

    An empty request list completes synchronously with empty results.
    """
    span = telemetry.span("net.gather", fanout=len(messages))
    if not messages:
        span.finish()
        on_complete({}, [])
        return

    outstanding = len(messages)
    replies: dict[int, Message] = {}
    failed: list[Message] = []

    def settle() -> None:
        nonlocal outstanding
        outstanding -= 1
        if outstanding == 0:
            span.set(replied=len(replies), failed=len(failed))
            span.finish()
            on_complete(replies, failed)

    def make_reply(dest: int) -> Callable[[Message], None]:
        def on_reply(reply: Message) -> None:
            replies[dest] = reply
            settle()

        return on_reply

    def make_fail(request: Message) -> Callable[[Message], None]:
        def on_fail(_message: Message) -> None:
            failed.append(request)
            settle()

        return on_fail

    for message in messages:
        client.call(
            message,
            make_reply(message.destination),
            on_timeout=make_fail(message),
            policy=policy,
        )
    # The round's span outlives this frame (it finishes when the last call
    # settles); leave the nesting stack so later unrelated spans on this
    # thread don't nest under it. Each request already captured the span's
    # trace context while it was current.
    span.detach()


class Batcher:
    """Coalesce same-destination sends inside a flush window.

    Each enqueued message joins a per-destination queue; the first message
    for a destination arms one flush timer ``window`` transport-seconds
    out, and the flush wraps everything queued for that destination into a
    single :data:`BATCH_KIND` envelope. With ``window=0`` the batcher is a
    passthrough — every message is sent immediately, unchanged, so
    enabling the code path costs nothing until a window is configured.

    Batch occupancy (messages per flushed envelope) is observed on the
    ``net_batch_occupancy`` histogram.
    """

    def __init__(self, transport: Transport, window: float = 0.0) -> None:
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        self.transport = transport
        self.window = window
        self._queues: dict[int, list[Message]] = {}
        self._closed = False

    def enqueue(self, message: Message) -> None:
        """Queue ``message`` for its destination (or send it right away).

        Trace context is captured per enqueued message, at enqueue time —
        each push in a flushed envelope keeps its own originating context
        (the envelope itself carries none), so batched pushes fan back out
        into their individual traces at the unwrapper.
        """
        telemetry.propagate_current(message)
        if self.window <= 0.0 or self._closed:
            self.transport.send(message)
            return
        queue = self._queues.get(message.destination)
        if queue is not None:
            queue.append(message)
            return
        self._queues[message.destination] = [message]
        self.transport.schedule(
            self.window, lambda: self._flush(message.destination)
        )

    def _flush(self, destination: int) -> None:
        queue = self._queues.pop(destination, None)
        if not queue:
            return
        telemetry.observe("net_batch_occupancy", len(queue))
        if len(queue) == 1:
            self.transport.send(queue[0])
            return
        envelope = Message(
            kind=BATCH_KIND,
            source=queue[0].source,
            destination=destination,
            payload={"messages": [encode_message(m).decode("utf-8") for m in queue]},
        )
        self.transport.send(envelope)

    def flush_all(self) -> None:
        """Flush every queue now (the armed timers become no-ops)."""
        for destination in list(self._queues):
            self._flush(destination)

    def close(self) -> None:
        """Flush outstanding queues and fall back to immediate sends."""
        self.flush_all()
        self._closed = True

    def pending(self) -> int:
        """Number of currently queued (unflushed) messages."""
        return sum(len(q) for q in self._queues.values())


def install_batch_unwrapper(
    upcalls: MutableMapping[str, Upcall],
    dispatch: Callable[[Message], None],
) -> None:
    """Register the receiver-side :data:`BATCH_KIND` handler.

    ``dispatch`` is invoked for each inner message in arrival order —
    hosts pass their own delivery function so unwrapped messages take the
    exact path an unbatched message would have taken.
    """

    def unwrap(envelope: Message) -> None:
        for encoded in envelope.payload["messages"]:
            dispatch(decode_message(encoded.encode("utf-8")))
        return None

    upcalls[BATCH_KIND] = unwrap

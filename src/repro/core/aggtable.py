"""Per-node aggregation table (paper Sec. 4, Fig. 6).

Each DAT node keeps track of the aggregations it participates in: one entry
per active rendezvous key, holding the aggregate function, the mode
(on-demand or continuous), and the partial states received from children in
the current round. The table is deliberately transport-agnostic — the
protocol service (:mod:`repro.core.service`) drives it from either the
simulator or the UDP RPC layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.core.aggregates import Aggregate
from repro.errors import AggregationError

__all__ = ["AggregationMode", "AggregationEntry", "AggregationTable"]


class AggregationMode(str, Enum):
    """The two aggregate modes the prototype implements (Sec. 4)."""

    ON_DEMAND = "on_demand"
    CONTINUOUS = "continuous"


@dataclass
class AggregationEntry:
    """State of one active aggregation at one node.

    Parameters
    ----------
    key:
        Rendezvous key identifying the DAT tree.
    aggregate:
        The mergeable aggregate function.
    mode:
        On-demand (single collection round) or continuous (epoch-based).
    expected_children:
        Children this node waits for before pushing upward. ``None`` means
        unknown (on-demand collection counts explicit responses instead).
    """

    key: int
    aggregate: Aggregate
    mode: AggregationMode
    expected_children: frozenset[int] | None = None
    epoch: int = 0
    received: dict[int, Any] = field(default_factory=dict)
    local_state: Any = None

    def reset_round(self, epoch: int | None = None) -> None:
        """Begin a new collection round, clearing child contributions."""
        self.received.clear()
        self.local_state = None
        if epoch is not None:
            self.epoch = epoch
        else:
            self.epoch += 1

    def set_local(self, value: float) -> None:
        """Record this node's own reading for the current round."""
        self.local_state = self.aggregate.lift(value)

    def add_child_state(self, child: int, state: Any, epoch: int | None = None) -> None:
        """Record a child's partial state.

        A duplicate contribution from the same child in one round replaces
        the previous one (retransmissions must not double-count). A stale
        epoch raises — the service layer should have filtered it.
        """
        if epoch is not None and epoch != self.epoch:
            raise AggregationError(
                f"child {child} contributed to epoch {epoch}, current is {self.epoch}"
            )
        self.received[child] = state

    def is_complete(self) -> bool:
        """True when every expected child has contributed (and local is set)."""
        if self.local_state is None:
            return False
        if self.expected_children is None:
            return True
        return set(self.received) >= set(self.expected_children)

    def partial_state(self) -> Any:
        """Merge local + children states into the value to push to the parent."""
        states = list(self.received.values())
        if self.local_state is not None:
            states.append(self.local_state)
        if not states:
            raise AggregationError(
                f"aggregation {self.key} has no contributions to merge"
            )
        return self.aggregate.merge_all(states)

    def finalize(self) -> Any:
        """Finalize the merged state (root-only operation)."""
        return self.aggregate.finalize(self.partial_state())


class AggregationTable:
    """All active aggregations at one node, keyed by rendezvous key.

    Multiple DAT trees coexist on one overlay (one per monitored attribute);
    the table multiplexes them, mirroring Fig. 6 of the paper.
    """

    def __init__(self) -> None:
        self._entries: dict[int, AggregationEntry] = {}

    def open(
        self,
        key: int,
        aggregate: Aggregate,
        mode: AggregationMode = AggregationMode.ON_DEMAND,
        expected_children: frozenset[int] | None = None,
    ) -> AggregationEntry:
        """Create (or replace) the entry for ``key`` and return it."""
        entry = AggregationEntry(
            key=key,
            aggregate=aggregate,
            mode=AggregationMode(mode),
            expected_children=expected_children,
        )
        self._entries[key] = entry
        return entry

    def get(self, key: int) -> AggregationEntry:
        """Entry for ``key``; raises :class:`AggregationError` if absent."""
        try:
            return self._entries[key]
        except KeyError:
            raise AggregationError(f"no active aggregation for key {key}") from None

    def has(self, key: int) -> bool:
        """True if ``key`` has an active entry."""
        return key in self._entries

    def close(self, key: int) -> None:
        """Remove the entry for ``key`` (idempotent)."""
        self._entries.pop(key, None)

    def active_keys(self) -> list[int]:
        """Rendezvous keys with active entries."""
        return sorted(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: int) -> bool:
        return key in self._entries

"""Protocol-level DAT aggregation service (paper Sec. 4, Fig. 6).

Each node runs a :class:`DatNodeService` on top of a *host* — anything with
an ``ident``, ``space``, ``transport`` and an ``upcalls`` dict, i.e. either
a live :class:`~repro.chord.node.ChordProtocolNode` or the lightweight
:class:`StandaloneDatHost` used when experiments want converged finger
tables without protocol noise. The service implements both aggregate modes:

* **Continuous** (push) — every ``interval`` the node merges its local
  reading with the freshest cached child states and pushes the partial
  state to its parent. No child membership is needed at all: parents learn
  of children purely by receiving pushes, the paper's "no explicit
  parent-child membership" property. The root's estimate converges within
  one tree-height worth of intervals and tracks the live values thereafter
  (the staleness visible as off-diagonal scatter in Fig. 9(b)).

* **On-demand** (pull) — a collection round started at the root propagates
  down the tree and partial states flow back up. Downward propagation needs
  child sets, which the prototype derives from its fingers-of-fingers
  extension; here they come from an injected ``children_resolver``
  (equivalent converged-neighbor information — see DESIGN.md).

Message kinds: ``agg_push`` (continuous upward push), ``agg_collect``
(on-demand downward request), ``agg_partial`` (on-demand upward response).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, cast

from repro import telemetry
from repro.chord.fingers import FingerLike
from repro.chord.host import ChordHost
from repro.chord.idspace import IdSpace
from repro.core.aggregates import Aggregate, get_aggregate
from repro.core.limiting import FingerLimiter
from repro.core.parent import select_parent_balanced, select_parent_basic
from repro.errors import AggregationError, TreeError
from repro.net import (
    UNBOUNDED_POLICY,
    Batcher,
    DeferredResponder,
    RetryPolicy,
    RpcClient,
    UpcallRegistry,
    gather,
    install_batch_unwrapper,
)
from repro.sim.messages import Message
from repro.sim.transport import Transport
from repro.telemetry.spans import SpanBase

__all__ = ["StandaloneDatHost", "DatNodeService", "OnDemandRound"]


class StandaloneDatHost:
    """Minimal host giving a DAT service a transport presence.

    Used by experiments that want DAT behaviour over converged finger
    tables without running the full Chord maintenance protocol (the static
    analytical setting of Sec. 5.2/5.3).
    """

    def __init__(self, ident: int, space: IdSpace, transport: Transport) -> None:
        self.ident = ident
        self.space = space
        self.transport = transport
        self.upcalls = UpcallRegistry()
        transport.register(ident, self._handle)

    def _handle(self, message: Message) -> Message | None:
        # Unknown kinds drop, like the UDP prototype — the registry's policy.
        return self.upcalls.dispatch(message)

    def shutdown(self) -> None:
        """Unregister from the transport.

        Unregistering also cancels every RPC this node still has pending
        (the transport drops their reply/timeout continuations), so hosts
        can be torn down and rebuilt on one shared transport across
        repeated experiment runs without leaking handlers or timers.
        """
        self.transport.unregister(self.ident)


@dataclass
class _ContinuousState:
    """Continuous-mode cache for one rendezvous key.

    ``child_states`` maps child -> (receipt time, partial state). Entries
    older than ``stale_after`` push intervals are dropped before each
    merge, so contributions from departed or re-parented children age out
    instead of being double-counted forever.
    """

    aggregate: Aggregate
    interval: float
    stale_after: float
    child_states: dict[int, tuple[float, Any]] = field(default_factory=dict)
    last_estimate: Any = None
    pushes_sent: int = 0
    cancel_timer: Callable[[], None] | None = None

    def fresh_states(self, now: float) -> list[Any]:
        """Drop expired child entries and return the surviving states."""
        horizon = now - self.stale_after * self.interval
        expired = [
            child for child, (when, _state) in self.child_states.items()
            if when < horizon
        ]
        for child in expired:
            del self.child_states[child]
        return [state for _when, state in self.child_states.values()]


@dataclass
class OnDemandRound:
    """Root-side bookkeeping for one on-demand collection."""

    key: int
    round_id: int
    aggregate: Aggregate
    on_result: Callable[[Any], None]
    expected: set[int]
    states: list[Any] = field(default_factory=list)
    done: bool = False
    span: SpanBase | None = None


class DatNodeService:
    """DAT layer of one node.

    Parameters
    ----------
    host:
        Object exposing ``ident``, ``space``, ``transport``, ``upcalls``.
    finger_provider:
        Returns the node's current finger table — live protocol tables or a
        converged snapshot. Re-read on every parent computation, so the
        tree adapts to churn exactly as fast as stabilization updates
        fingers (Sec. 3.2).
    value_provider:
        Returns this node's current local reading ``x_i(t)``.
    scheme:
        ``"basic"`` or ``"balanced"``.
    d0_provider:
        Returns the mean-gap estimate for the limiting function (balanced
        scheme only).
    children_resolver:
        ``(key, root) -> children of this node`` — required for on-demand
        mode only.
    retry_policy:
        :class:`~repro.net.RetryPolicy` governing on-demand collect RPCs.
        Defaults to :data:`~repro.net.UNBOUNDED_POLICY` — the historical
        semantics: no deadline, a lost message stalls the round. Pass a
        bounded policy to retransmit lost collects and finish rounds with
        whatever subtrees answered.
    push_batch_window:
        Flush window (transport seconds) for coalescing same-parent
        ``agg_push`` messages through a :class:`~repro.net.Batcher`.
        ``0.0`` (default) sends each push immediately, unchanged.
    """

    def __init__(
        self,
        host: ChordHost,
        finger_provider: Callable[[], FingerLike],
        value_provider: Callable[[], float],
        scheme: str = "balanced",
        d0_provider: Callable[[], float] | None = None,
        children_resolver: Callable[[int, int], list[int]] | None = None,
        predecessor_provider: Callable[[], int | None] | None = None,
        retry_policy: RetryPolicy | None = None,
        push_batch_window: float = 0.0,
    ) -> None:
        if scheme not in ("basic", "balanced"):
            raise ValueError(f"scheme must be 'basic' or 'balanced', got {scheme!r}")
        if scheme == "balanced" and d0_provider is None:
            raise ValueError("balanced scheme requires a d0_provider")
        self.host = host
        self.finger_provider = finger_provider
        self.value_provider = value_provider
        self.scheme = scheme
        self.d0_provider = d0_provider
        self.children_resolver = children_resolver
        # Ownership test for key-addressed continuous mode (Algorithm 1
        # line 5): a node with a live predecessor pointer decides "am I
        # successor(k)?" locally. ChordProtocolNode hosts are wired
        # automatically; static hosts fall back to the root hint passed to
        # start_continuous.
        if predecessor_provider is None and hasattr(host, "predecessor"):
            def _host_predecessor() -> int | None:
                return cast("int | None", getattr(host, "predecessor"))

            predecessor_provider = _host_predecessor
        self.predecessor_provider = predecessor_provider
        self.retry_policy = retry_policy if retry_policy is not None else UNBOUNDED_POLICY
        # The session layer owns all request-path state: reply correlation
        # lives in the transport's pending table, deferred-reply dedupe in
        # the responder — this service keeps no pending-request dicts.
        host_net = getattr(host, "net", None)
        self.net: RpcClient = (
            host_net
            if isinstance(host_net, RpcClient)
            else RpcClient(host.transport, host.ident)
        )
        self._responder = DeferredResponder(host.transport)
        self._batcher = Batcher(host.transport, push_batch_window)
        self._continuous: dict[int, _ContinuousState] = {}
        self._round_seq = 0
        host.upcalls["agg_push"] = self._on_push
        host.upcalls["agg_collect"] = self._on_collect
        install_batch_unwrapper(host.upcalls, self._dispatch_unbatched)

    def _dispatch_unbatched(self, message: Message) -> None:
        """Deliver one message unwrapped from a ``net_batch`` envelope."""
        handler = self.host.upcalls.get(message.kind)
        if handler is not None:
            handler(message)

    def close(self) -> None:
        """Detach from the host: stop pushes, drop upcall registrations.

        The host's own teardown (``shutdown()`` / ``leave()``) cancels any
        RPCs still pending at the transport.
        """
        for key in list(self._continuous):
            self.stop_continuous(key)
        self._batcher.close()
        for kind in ("agg_push", "agg_collect", "net_batch"):
            self.host.upcalls.pop(kind, None)

    # ------------------------------------------------------------------ #
    # Tree position
    # ------------------------------------------------------------------ #

    @property
    def ident(self) -> int:
        return self.host.ident

    def _gap_estimate(self) -> float:
        """Current ``d0`` for the limiting function (balanced scheme only)."""
        assert self.d0_provider is not None  # enforced by __init__ for balanced
        return self.d0_provider()

    def parent_for(self, root: int) -> int | None:
        """This node's parent in the DAT rooted at ``root``.

        Returns ``None`` at the root, and also during churn transients when
        the live finger table is momentarily inconsistent (e.g. the
        successor pointer overshoots the root mid-failover). The caller
        skips that round; stabilization restores a parent within a few
        intervals — the adaptiveness property of Sec. 3.2.
        """
        table = self.finger_provider()
        try:
            if self.scheme == "basic":
                return select_parent_basic(table, root)
            limiter = FingerLimiter.for_gap(self._gap_estimate())
            return select_parent_balanced(table, root, limiter)
        except TreeError:
            return None

    def owns_key(self, key: int, root_hint: int | None = None) -> bool:
        """Algorithm 1 line 5: is this node ``successor(key)``?

        Decided locally from the predecessor pointer when available
        (``key in (pred, self]``); otherwise falls back to comparing
        against ``root_hint`` (static deployments).
        """
        if self.predecessor_provider is not None:
            pred = self.predecessor_provider()
            if pred is not None:
                if pred == self.ident:
                    return True  # lone ring
                return self.host.space.in_half_open_right(key, pred, self.ident)
        return root_hint == self.ident

    def parent_toward_key(self, key: int) -> int | None:
        """Next hop toward the key's owner (key-addressed parent selection).

        This is Algorithm 1 as written: eligibility is measured against the
        rendezvous key itself, so nodes need not know the root's identity.
        If every finger overshoots ``key`` this node is the owner's
        immediate predecessor and its parent is its successor (the root).
        Returns ``None`` on a lone ring or mid-churn inconsistency.
        """
        table = self.finger_provider()
        space = table.space
        if self.scheme == "balanced":
            x = space.cw(self.ident, key)
            limiter = FingerLimiter.for_gap(self._gap_estimate())
            max_slot = limiter(x)
        else:
            max_slot = None
        parent = table.closest_preceding(key, max_slot=max_slot)
        if parent is None:
            successor = table.successor
            return successor if successor != self.ident else None
        return parent

    # ------------------------------------------------------------------ #
    # Continuous mode
    # ------------------------------------------------------------------ #

    def start_continuous(
        self,
        key: int,
        root: int,
        aggregate: Aggregate | str,
        interval: float,
        stale_after: float = 4.0,
    ) -> None:
        """Begin periodic pushes toward ``root`` for rendezvous ``key``.

        ``stale_after`` is the child-state expiry horizon in push intervals:
        a child that has not pushed for that long (it departed, crashed, or
        re-parented after stabilization) stops contributing.
        """
        agg = get_aggregate(aggregate) if isinstance(aggregate, str) else aggregate
        if key in self._continuous:
            self.stop_continuous(key)
        state = _ContinuousState(aggregate=agg, interval=interval, stale_after=stale_after)
        self._continuous[key] = state
        self._schedule_push(key, root_hint=root)

    def stop_continuous(self, key: int) -> None:
        """Cancel the periodic push for ``key``."""
        state = self._continuous.pop(key, None)
        if state is not None and state.cancel_timer is not None:
            state.cancel_timer()

    def _schedule_push(self, key: int, root_hint: int | None) -> None:
        state = self._continuous.get(key)
        if state is None:
            return

        def tick() -> None:
            self._push_once(key, root_hint=root_hint)
            self._schedule_push(key, root_hint)

        state.cancel_timer = self.host.transport.schedule(state.interval, tick)

    def _push_once(self, key: int, root_hint: int | None) -> None:
        state = self._continuous.get(key)
        if state is None:
            return
        local = state.aggregate.lift(self.value_provider())
        merged = state.aggregate.merge_all(
            [local, *state.fresh_states(self.host.transport.now())]
        )
        if self.owns_key(key, root_hint=root_hint):
            # This node is (currently) successor(key): the tree root.
            state.last_estimate = state.aggregate.finalize(merged)
            return
        parent = self.parent_toward_key(key)
        if parent is None:
            return  # lone ring or mid-churn transient: skip this round
        state.pushes_sent += 1
        telemetry.count("agg_pushes_total")
        # Partial states are JSON-encodable for the built-in aggregates
        # (numbers / tuples of numbers / dataclass-free forms); the wire
        # layer enforces it when the transport actually serializes.
        # Pushes ride the batcher: with a zero window (default) this is an
        # immediate send; with a window, same-parent pushes coalesce.
        push = Message(
            kind="agg_push",
            source=self.ident,
            destination=parent,
            payload={"key": key, "state": _encode_state(merged)},
        )
        if telemetry.tracing_enabled():
            # Each push roots its own trace — even under an ambient
            # harness span (an experiment phase) — and the receiver's
            # handler span joins it, so one push climbing one hop is a
            # rooted two-span causal tree. Batched pushes keep their
            # individual contexts.
            with telemetry.trace_span(
                "dat.push", node=self.ident, key=key, to=parent
            ) as sp:
                sp.propagate(push)
        self._batcher.enqueue(push)

    def _on_push(self, message: Message) -> None:
        key = message.payload["key"]
        state = self._continuous.get(key)
        if state is None:
            return  # not participating (yet): drop
        with telemetry.remote_span(
            message, "dat.push_recv", node=self.ident, key=key, child=message.source
        ):
            state.child_states[message.source] = (
                self.host.transport.now(),
                _decode_state(message.payload["state"], state.aggregate),
            )
        return None

    def root_estimate(self, key: int) -> Any:
        """Root-side: the latest finalized global estimate (None before
        the first full interval)."""
        state = self._continuous.get(key)
        if state is None:
            raise AggregationError(f"no continuous aggregation active for key {key}")
        return state.last_estimate

    # ------------------------------------------------------------------ #
    # On-demand mode
    # ------------------------------------------------------------------ #

    def collect(
        self,
        key: int,
        root: int,
        aggregate: Aggregate | str,
        on_result: Callable[[Any], None],
    ) -> None:
        """Root-side: run one collection round over the tree.

        Must be invoked on the root's service (the monitoring facade routes
        the request there first). Each child is asked with one
        ``agg_collect`` RPC under the service's retry policy; the round
        completes when every child's subtree has answered or exhausted its
        attempts (under the default unbounded policy a lost message stalls
        the round — the historical semantics).
        """
        if self.ident != root:
            raise AggregationError(
                f"collect() must run at the root {root}, not node {self.ident}"
            )
        if self.children_resolver is None:
            raise AggregationError("on-demand mode requires a children_resolver")
        agg = get_aggregate(aggregate) if isinstance(aggregate, str) else aggregate
        self._round_seq += 1
        round_id = self._round_seq
        children = self.children_resolver(key, root)
        state = OnDemandRound(
            key=key,
            round_id=round_id,
            aggregate=agg,
            on_result=on_result,
            expected=set(children),
        )
        # The round roots its own trace (trace_span, not span): like
        # dat.push, a collect round is a causal unit of the protocol, not
        # of whatever harness span happens to be open at the call site.
        round_span = telemetry.trace_span(
            "dat.collect",
            node=self.ident,
            key=key,
            round_id=round_id,
            n_children=len(children),
        )
        state.span = round_span
        state.states.append(agg.lift(self.value_provider()))

        def done(replies: dict[int, Message], failed: list[Message]) -> None:
            if state.done:
                return
            state.done = True
            for child in sorted(replies):
                reply = replies[child]
                state.states.append(
                    _decode_state(reply.payload["state"], state.aggregate)
                )
                state.expected.discard(child)
            merged = state.aggregate.merge_all(state.states)
            if state.span is not None:
                state.span.finish(
                    n_states=len(state.states), n_failed=len(failed)
                )
                telemetry.count("collect_rounds_total")
            state.on_result(state.aggregate.finalize(merged))

        gather(
            self.net,
            [self._collect_request(child, key, root, round_id, agg) for child in children],
            done,
            policy=self.retry_policy,
        )
        # The round's span finishes in ``done``; detach so spans started
        # later on this thread (other nodes' handlers, in the DES) don't
        # nest under it. The gather's requests already carry its context.
        round_span.detach()

    def _collect_request(
        self, child: int, key: int, root: int, round_id: int, aggregate: Aggregate
    ) -> Message:
        return Message(
            kind="agg_collect",
            source=self.ident,
            destination=child,
            payload={
                "key": key,
                "root": root,
                "round_id": round_id,
                "aggregate": aggregate.name,
            },
        )

    def _on_collect(self, message: Message) -> None:
        payload = message.payload
        key, root, round_id = payload["key"], payload["root"], payload["round_id"]
        # At-most-once per (requester, key, round): a retransmitted collect
        # must not fan out into the subtree again — the responder replays
        # the cached partial (or lets the in-flight gather answer it).
        if not self._responder.begin((message.source, key, round_id), message):
            return None
        # The hop's span joins the requester's trace; the responder owns
        # its lifecycle from here (complete() threads its context into the
        # reply and finishes it — deferred replies rejoin their trace).
        hop_span = self._responder.adopt(
            (message.source, key, round_id),
            telemetry.remote_span(
                message, "dat.collect_hop", node=self.ident, key=key, round_id=round_id
            ),
        )
        aggregate = get_aggregate(payload["aggregate"])
        children = (
            self.children_resolver(key, root) if self.children_resolver else []
        )
        local = aggregate.lift(self.value_provider())
        if not children:
            self._complete_collect(message, aggregate, [local], key, round_id)
            return None

        def done(replies: dict[int, Message], _failed: list[Message]) -> None:
            states = [local] + [
                _decode_state(replies[child].payload["state"], aggregate)
                for child in sorted(replies)
            ]
            self._complete_collect(message, aggregate, states, key, round_id)

        gather(
            self.net,
            [self._collect_request(c, key, root, round_id, aggregate) for c in children],
            done,
            policy=self.retry_policy,
        )
        hop_span.detach()
        return None

    def _complete_collect(
        self,
        request: Message,
        aggregate: Aggregate,
        states: list[Any],
        key: int,
        round_id: int,
    ) -> None:
        """Answer an ``agg_collect`` with this subtree's merged partial."""
        merged = aggregate.merge_all(states)
        self._responder.complete(
            (request.source, key, round_id),
            request.response(
                kind="agg_partial",
                key=key,
                round_id=round_id,
                state=_encode_state(merged),
            ),
        )


# ---------------------------------------------------------------------- #
# Partial-state wire coding
# ---------------------------------------------------------------------- #
#
# Built-in aggregate states are numbers, (sum, count) pairs, count tuples,
# or moment dataclasses. JSON keeps numbers and lists; tuples and the
# moment state need explicit tagging so decode restores the exact type the
# aggregate's merge expects.

from repro.core.aggregates import _MomentState  # noqa: E402  (private by design)


def _encode_state(state: Any) -> Any:
    if isinstance(state, _MomentState):
        return {"__moment__": [state.count, state.mean, state.m2]}
    if isinstance(state, tuple):
        return {"__tuple__": list(state)}
    return state


def _decode_state(encoded: Any, aggregate: Aggregate) -> Any:
    if isinstance(encoded, dict) and "__moment__" in encoded:
        count, mean, m2 = encoded["__moment__"]
        return _MomentState(count=int(count), mean=float(mean), m2=float(m2))
    if isinstance(encoded, dict) and "__tuple__" in encoded:
        return tuple(encoded["__tuple__"])
    if isinstance(encoded, list):
        return tuple(encoded)
    return encoded

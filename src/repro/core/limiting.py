"""The finger limiting function ``g(x)`` of balanced routing (paper Sec. 3.4).

A node ``i`` at clockwise distance ``x`` from the root may only use fingers
at most ``2^{g(x)}`` away, where::

    g(x) = ceil(log2((x + 2*d0) / 3))

and ``d0`` is the mean inter-node gap (``2^b / n``). The derivation solves
for the limit that makes exactly the j-th and (j+1)-th inbound fingers of
every node choose it as parent, yielding branching factor <= 2 on evenly
distributed identifiers.

All arithmetic here is exact (integer/rational): for ``b = 160`` spaces the
quantities overflow doubles, and an off-by-one in ``ceil(log2(.))`` flips a
parent choice and breaks the balance proof.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.util.bits import ceil_log2

__all__ = ["ceil_log2_fraction", "finger_limit", "FingerLimiter"]


def ceil_log2_fraction(value: Fraction) -> int:
    """Exact ``ceil(log2(value))`` for a positive rational, floored at 0.

    For ``value <= 1`` this returns 0, which in the limiter means "only the
    immediate-successor finger is eligible" — the correct degenerate case
    for nodes adjacent to the root.
    """
    if value <= 0:
        raise ValueError(f"value must be positive, got {value}")
    # For value > 1: ceil(log2(r)) == ceil_log2(ceil(r)) because powers of
    # two are integers; for value <= 1 the integer ceiling is 1 -> 0.
    integer_ceiling = -((-value.numerator) // value.denominator)
    return ceil_log2(max(integer_ceiling, 1))


def finger_limit(x: int, d0: float | Fraction) -> int:
    """``g(x) = ceil(log2((x + 2*d0)/3))``, clamped to ``>= 0``.

    Parameters
    ----------
    x:
        Clockwise distance from the node to the root, ``x >= 0``. (``x = 0``
        is the root itself, which has no parent; callers never need the
        value but it is defined for completeness.)
    d0:
        Mean inter-node gap. Accepts an exact :class:`~fractions.Fraction`
        (preferred, e.g. ``Fraction(2**b, n)``) or a float, which is
        converted exactly.

    Returns
    -------
    int
        Maximum eligible finger slot index ``j`` (0-indexed, finger ``j``
        covers offset ``2^j``): eligible slots are ``j <= g(x)``.
    """
    if x < 0:
        raise ValueError(f"x must be non-negative, got {x}")
    gap = d0 if isinstance(d0, Fraction) else Fraction(d0).limit_denominator(10**12)
    if gap <= 0:
        raise ValueError(f"d0 must be positive, got {d0}")
    return ceil_log2_fraction((x + 2 * gap) / 3)


@dataclass(frozen=True)
class FingerLimiter:
    """Callable ``g(x)`` with a fixed mean gap, precomputed exactly.

    The constructor accepts the ring parameters directly so experiment code
    does not repeat the ``d0 = 2^b / n`` convention::

        limiter = FingerLimiter.for_ring(bits=32, n_nodes=512)
        limiter(x)   # max eligible finger slot for distance x
    """

    d0: Fraction

    @classmethod
    def for_ring(cls, bits: int, n_nodes: int) -> "FingerLimiter":
        """Limiter with the exact mean gap ``2^bits / n_nodes``."""
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        return cls(d0=Fraction(1 << bits, n_nodes))

    @classmethod
    def for_gap(cls, d0: float | Fraction) -> "FingerLimiter":
        """Limiter with an explicit (possibly estimated) mean gap."""
        gap = d0 if isinstance(d0, Fraction) else Fraction(d0).limit_denominator(10**12)
        if gap <= 0:
            raise ValueError(f"d0 must be positive, got {d0}")
        return cls(d0=gap)

    def __call__(self, x: int) -> int:
        return finger_limit(x, self.d0)

    def max_finger_offset(self, x: int) -> int:
        """Largest finger offset ``2^{g(x)}`` eligible at distance ``x``."""
        return 1 << self(x)

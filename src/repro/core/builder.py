"""DAT tree construction from a converged ring (paper Algorithm 1 + Sec. 3.2).

The builders compute, for every node, its parent under the chosen scheme and
return an explicit :class:`~repro.core.tree.DatTree` snapshot. Distributed
nodes never materialize this structure — each knows only its own parent
(and, via inbound fingers, its children) — but the snapshot is exactly what
the evaluation measures.
"""

from __future__ import annotations

from enum import Enum
from fractions import Fraction
from typing import TYPE_CHECKING

import numpy as np

from repro import telemetry
from repro.chord.fingers import FingerTable
from repro.chord.ring import StaticRing
from repro.core.limiting import FingerLimiter
from repro.core.parent import select_parent_balanced, select_parent_basic
from repro.core.tree import DatTree, TreeStats

if TYPE_CHECKING:  # circular at runtime: incremental/fastbuild import us
    from repro.chord.fastbuild import DatTreeArrays
    from repro.chord.incremental import DatUpdateEngine, DatUpdateReport

__all__ = [
    "DatScheme",
    "build_basic_dat",
    "build_balanced_dat",
    "build_dat",
    "DatTreeBuilder",
]


class DatScheme(str, Enum):
    """Tree-construction scheme selector."""

    BASIC = "basic"
    BALANCED = "balanced"


def _resolve_tables(
    ring: StaticRing, tables: dict[int, FingerTable] | None
) -> dict[int, FingerTable]:
    return ring.all_finger_tables() if tables is None else tables


def build_basic_dat(
    ring: StaticRing,
    key: int,
    tables: dict[int, FingerTable] | None = None,
) -> DatTree:
    """Basic DAT: each node's parent is its greedy next hop toward the root.

    Parameters
    ----------
    ring:
        Converged ring snapshot.
    key:
        Rendezvous key; the root is ``successor(key)``.
    tables:
        Optional pre-built finger tables shared across several builds.
    """
    tables = _resolve_tables(ring, tables)
    root = ring.successor(key)
    parent: dict[int, int] = {}
    for node in ring:
        chosen = select_parent_basic(tables[node], root)
        if chosen is not None:
            parent[node] = chosen
    return DatTree(root=root, parent=parent, key=key)


def build_balanced_dat(
    ring: StaticRing,
    key: int,
    tables: dict[int, FingerTable] | None = None,
    d0: float | Fraction | None = None,
) -> DatTree:
    """Balanced DAT (Algorithm 1): parent limited to fingers within 2^g(x).

    Parameters
    ----------
    ring, key, tables:
        As in :func:`build_basic_dat`.
    d0:
        Mean inter-node gap used by the limiting function. Defaults to the
        exact ``2^b / n`` of the ring; pass an estimate to model the
        distributed setting where nodes only know an approximation.
    """
    tables = _resolve_tables(ring, tables)
    root = ring.successor(key)
    if d0 is None:
        limiter = FingerLimiter.for_ring(ring.space.bits, len(ring))
    else:
        limiter = FingerLimiter.for_gap(d0)
    parent: dict[int, int] = {}
    for node in ring:
        chosen = select_parent_balanced(tables[node], root, limiter)
        if chosen is not None:
            parent[node] = chosen
    return DatTree(root=root, parent=parent, key=key)


def build_dat(
    ring: StaticRing,
    key: int,
    scheme: DatScheme | str = DatScheme.BALANCED,
    tables: dict[int, FingerTable] | None = None,
    d0: float | Fraction | None = None,
    fast: bool = False,
) -> DatTree:
    """Build a DAT under the given scheme (string or :class:`DatScheme`).

    ``fast=True`` routes through the vectorized NumPy builder
    (:mod:`repro.chord.fastbuild`) — identical output, much faster on large
    rings; only valid with the default ``d0`` and no pre-built ``tables``.
    """
    scheme = DatScheme(scheme)
    # Instrumentation lives on this wrapper (and on DatTreeBuilder.build),
    # never in the per-node loops — the disabled-mode cost is one global
    # read per build, gated by benchmarks/bench_telemetry_overhead.py.
    with telemetry.span(
        "dat.build", key=key, scheme=scheme.value, n=len(ring)
    ) as sp:
        if fast and tables is None and d0 is None:
            # Imported lazily: fastbuild depends on this module's tree types.
            from repro.chord.fastbuild import build_dat_fast

            tree = build_dat_fast(ring, key, scheme=scheme)
        elif scheme is DatScheme.BASIC:
            tree = build_basic_dat(ring, key, tables=tables)
        else:
            tree = build_balanced_dat(ring, key, tables=tables, d0=d0)
        if sp is not telemetry.NULL_SPAN:
            # ``height`` is lazy: sampled-out / evicted spans never pay the
            # depth scan; the exporter resolves it only for spans it keeps.
            sp.set(root=tree.root)
            sp.set_lazy(height=lambda: tree.height)
            telemetry.count("dat_builds_total", scheme=scheme.value)
        return tree


class DatTreeBuilder:
    """Reusable builder caching finger state across many rendezvous keys.

    Building multiple DATs on one overlay (one per monitored attribute —
    the paper's 'multiple aggregation trees' scenario) shares the ring's
    finger state; only the per-node parent scan differs per key. Two caches
    are kept: the scalar ``{node: FingerTable}`` dict and the vectorized
    :func:`~repro.chord.fastbuild.fast_finger_matrix`, so default builds
    route through the NumPy fast path with the matrix computed once per
    ring, not once per key.

    :meth:`apply_event` switches the builder to incremental maintenance
    (:class:`~repro.chord.incremental.DatUpdateEngine`): each membership
    event then patches the finger caches and every previously built tree
    in O(log n) expected time instead of invalidating them. After the
    first event, trees returned by :meth:`build` are live views patched in
    place by subsequent events.
    """

    def __init__(
        self, ring: StaticRing, scheme: DatScheme | str = DatScheme.BALANCED
    ) -> None:
        self.ring = ring
        self.scheme = DatScheme(scheme)
        self._tables: dict[int, FingerTable] | None = None
        self._matrix: np.ndarray | None = None
        self._built: dict[int, DatTree] = {}
        self._engine: DatUpdateEngine | None = None

    @property
    def tables(self) -> dict[int, FingerTable]:
        """Finger tables of the ring (built lazily, cached)."""
        if self._tables is None:
            self._tables = self.ring.all_finger_tables()
        return self._tables

    @property
    def finger_matrix(self) -> np.ndarray | None:
        """Cached fast-path finger matrix; ``None`` when the space is too
        wide for :mod:`~repro.chord.fastbuild` or the ring is trivial."""
        if self._engine is not None:
            return self._engine.maintainer.matrix
        if self._matrix is None and self._fast_capable():
            from repro.chord.fastbuild import fast_finger_matrix

            self._matrix = fast_finger_matrix(self.ring)
        return self._matrix

    def _fast_capable(self) -> bool:
        from repro.chord.fastbuild import FAST_PATH_MAX_BITS

        return self.ring.space.bits <= FAST_PATH_MAX_BITS and len(self.ring) > 1

    def build(self, key: int, d0: float | Fraction | None = None) -> DatTree:
        """Build the DAT for one rendezvous key.

        Default builds (``d0=None``) go through the vectorized fast path
        with the cached finger matrix when the space allows it; the scalar
        path handles custom ``d0`` values and wide spaces. Identical
        output either way (the fastbuild equivalence discipline).
        """
        if d0 is not None:
            return build_dat(
                self.ring, key, scheme=self.scheme, tables=self.tables, d0=d0
            )
        if self._engine is not None:
            return self._engine.track(key)
        matrix = self.finger_matrix
        if matrix is not None:
            from repro.chord.fastbuild import build_dat_fast

            with telemetry.span(
                "dat.build", key=key, scheme=self.scheme.value, n=len(self.ring)
            ) as sp:
                tree = build_dat_fast(
                    self.ring, key, scheme=self.scheme, matrix=matrix
                )
                if sp is not telemetry.NULL_SPAN:
                    sp.set(root=tree.root)
                    sp.set_lazy(height=lambda tree=tree: tree.height)
                    telemetry.count("dat_builds_total", scheme=self.scheme.value)
        else:
            tree = build_dat(self.ring, key, scheme=self.scheme, tables=self.tables)
        self._built[key] = tree
        return tree

    def build_many(self, keys: list[int]) -> dict[int, DatTree]:
        """Build one DAT per rendezvous key (multi-tree scenario)."""
        return {key: self.build(key) for key in keys}

    def tree_arrays(self, key: int) -> "DatTreeArrays | None":
        """Array-native snapshot for ``key``, or ``None`` off the fast path.

        Returns a :class:`~repro.chord.fastbuild.DatTreeArrays` built with
        the cached finger matrix — the large-``n`` route that never boxes
        per-node Python objects. ``None`` means the space is too wide (or
        the ring trivial) and the caller should use :meth:`build`; when the
        incremental engine is active the maintained matrix backs the
        snapshot, so arrays reflect the post-churn membership.
        """
        matrix = self.finger_matrix
        if matrix is None:
            return None
        from repro.chord.fastbuild import fast_tree_arrays

        return fast_tree_arrays(self.ring, key, scheme=self.scheme, matrix=matrix)

    def tree_stats(self, key: int) -> TreeStats:
        """Sec. 5.2 statistics for ``key`` without materializing a tree.

        Bit-identical to ``build(key).stats()`` (the fastbuild equivalence
        discipline) but array-native end to end on the fast path, so it
        stays O(n) int64 storage at 10^5-10^6 nodes.
        """
        arrays = self.tree_arrays(key)
        if arrays is None:
            return self.build(key).stats()
        return arrays.stats()

    def apply_event(self, kind: str, ident: int) -> DatUpdateReport:
        """Apply a join/leave/crash, patching caches and built trees.

        The first call adopts the cached finger state into a
        :class:`~repro.chord.incremental.DatUpdateEngine` and registers
        every tree previously built with the default ``d0`` (the latest
        build per key); subsequent calls cost O(log n) expected per event.
        Returns the engine's :class:`~repro.chord.incremental.DatUpdateReport`.
        """
        return self._ensure_engine().apply(kind, ident)

    def _ensure_engine(self) -> DatUpdateEngine:
        if self._engine is None:
            from repro.chord.incremental import DatUpdateEngine

            self._engine = DatUpdateEngine(
                self.ring,
                scheme=self.scheme,
                tables=self._tables,
                matrix=self._matrix,
            )
            # The engine owns (or rebuilt) the scalar tables from here on;
            # keep the builder's cache pointing at the maintained dict.
            self._tables = self._engine.maintainer.tables
            self._matrix = None
            for key, tree in self._built.items():
                self._engine.track(key, tree)
            self._built.clear()
        return self._engine

    def invalidate(self) -> None:
        """Drop all cached finger state after out-of-band ring changes.

        Not needed after :meth:`apply_event` — the point of the
        incremental engine is that caches stay valid across events.
        """
        self._tables = None
        self._matrix = None
        self._built.clear()
        self._engine = None

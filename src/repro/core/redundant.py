"""Redundant aggregation over independent DAT trees (fault tolerance).

The paper's related work (Li et al. [12]) builds multiple
interior-node-disjoint trees "to tolerate single points of failure"; the
DAT paper itself leaves fault tolerance to implicit tree repair. This
module composes the two ideas with machinery we already have: aggregate
over ``k`` *independent* DATs (rendezvous keys salted per replica, so
roots and interiors differ with high probability) and combine the replica
results robustly. A crashed root or a lost subtree corrupts at most the
replicas that routed through it; the combiner (median for numeric
aggregates, first-available otherwise) masks up to ``(k-1)/2`` corrupted
replicas.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any

from repro.chord.hashing import sha1_id
from repro.chord.ring import StaticRing
from repro.core.aggregates import Aggregate, get_aggregate
from repro.core.builder import DatScheme, DatTreeBuilder
from repro.core.tree import DatTree
from repro.errors import AggregationError

__all__ = ["ReplicaOutcome", "RedundantAggregator"]


@dataclass(frozen=True)
class ReplicaOutcome:
    """Result of one replica tree's aggregation round."""

    replica: int
    key: int
    root: int
    value: Any | None
    #: None when the round completed; otherwise why it failed.
    failure: str | None = None

    @property
    def ok(self) -> bool:
        return self.failure is None


@dataclass
class RedundantResult:
    """Combined outcome over all replicas."""

    value: Any
    outcomes: list[ReplicaOutcome] = field(default_factory=list)

    @property
    def replicas_used(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.ok)


class RedundantAggregator:
    """k-replica aggregation over one overlay.

    Parameters
    ----------
    ring:
        The overlay.
    attribute:
        Monitored attribute; replica ``r`` uses the rendezvous key
        ``sha1("{attribute}#r")``, giving independent roots/trees.
    k:
        Replica count (odd values give clean majority masking).
    scheme:
        Tree-construction scheme.
    """

    def __init__(
        self,
        ring: StaticRing,
        attribute: str,
        k: int = 3,
        scheme: DatScheme | str = DatScheme.BALANCED,
    ) -> None:
        if k <= 0:
            raise AggregationError(f"replica count must be positive, got {k}")
        self.ring = ring
        self.attribute = attribute
        self.k = int(k)
        self._builder = DatTreeBuilder(ring, scheme=scheme)

    def replica_keys(self) -> list[int]:
        """The k salted rendezvous keys."""
        return [
            sha1_id(f"{self.attribute}#{replica}", self.ring.space)
            for replica in range(self.k)
        ]

    def trees(self) -> list[DatTree]:
        """One DAT per replica (roots spread by consistent hashing)."""
        return [self._builder.build(key) for key in self.replica_keys()]

    def distinct_roots(self) -> int:
        """How many distinct root nodes the replicas landed on."""
        return len({tree.root for tree in self.trees()})

    # ------------------------------------------------------------------ #
    # Aggregation with failure injection
    # ------------------------------------------------------------------ #

    def aggregate(
        self,
        values: dict[int, float],
        aggregate: Aggregate | str,
        failed_nodes: set[int] | None = None,
    ) -> RedundantResult:
        """Run every replica round and combine.

        ``failed_nodes`` models crash failures *during* the rounds: a
        replica whose root failed produces no result; a replica with failed
        interior nodes silently loses those subtrees (exactly what happens
        to an in-flight round on the wire).
        """
        agg = get_aggregate(aggregate) if isinstance(aggregate, str) else aggregate
        failed = failed_nodes or set()
        outcomes: list[ReplicaOutcome] = []
        for replica, (key, tree) in enumerate(zip(self.replica_keys(), self.trees())):
            outcomes.append(self._run_replica(replica, key, tree, values, agg, failed))
        good = [outcome.value for outcome in outcomes if outcome.ok]
        if not good:
            raise AggregationError(
                f"all {self.k} replicas failed for {self.attribute!r}"
            )
        combined = self._combine(good)
        return RedundantResult(value=combined, outcomes=outcomes)

    def _run_replica(
        self,
        replica: int,
        key: int,
        tree: DatTree,
        values: dict[int, float],
        agg: Aggregate,
        failed: set[int],
    ) -> ReplicaOutcome:
        if tree.root in failed:
            return ReplicaOutcome(
                replica=replica, key=key, root=tree.root, value=None,
                failure="root failed",
            )
        # Bottom-up merge, dropping subtrees under failed interiors.
        depths = tree.depths()
        states: dict[int, Any] = {}
        for node in tree.nodes():
            if node not in failed:
                states[node] = agg.lift(values[node])
        for node in sorted(tree.parent, key=lambda v: depths[v], reverse=True):
            if node in failed or node not in states:
                continue
            parent = tree.parent[node]
            if parent in failed:
                continue  # this subtree's contribution is lost
            if parent in states:
                states[parent] = agg.merge(states[parent], states[node])
            else:
                states[parent] = states[node]
        if tree.root not in states:
            return ReplicaOutcome(
                replica=replica, key=key, root=tree.root, value=None,
                failure="no data reached root",
            )
        return ReplicaOutcome(
            replica=replica,
            key=key,
            root=tree.root,
            value=agg.finalize(states[tree.root]),
        )

    @staticmethod
    def _combine(values: list[Any]) -> Any:
        """Median for numbers (masks corrupted minorities), else first."""
        if all(isinstance(v, (int, float)) for v in values):
            return statistics.median(values)
        return values[0]

"""Broadcast-gather on-demand aggregation — membership-free pulls.

The on-demand mode in :mod:`repro.core.service` pulls through explicit
child sets (an oracle standing in for the prototype's fingers-of-fingers
data). This module provides the fully protocol-honest alternative: the
root disseminates the collection request with the Chord **broadcast**
primitive (reaching every node without any membership knowledge), and the
answers gather back up the implicit DAT tree in a bounded number of
repeated-push waves:

1. ``broadcast(gather request)`` — n-1 messages, O(log n) depth;
2. on delivery every node snapshots its local value and, for ``waves``
   rounds spaced ``wave_interval`` apart, pushes its merged partial state
   (own snapshot + latest state received from each child) toward the key;
3. after the final wave the root finalizes. With ``waves >= tree height``
   the result is exact on a converged overlay — wave ``w`` propagates
   complete subtrees of depth ``w``.

Cost: one broadcast (n-1) plus at most ``waves * (n-1)`` pushes — the
price paid for needing zero membership state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # runtime import would cycle: broadcast uses core.tree
    from repro.chord.broadcast import BroadcastService

from repro import telemetry
from repro.core.aggregates import Aggregate, get_aggregate
from repro.core.service import DatNodeService, _decode_state, _encode_state
from repro.errors import AggregationError
from repro.sim.messages import Message
from repro.telemetry.spans import SpanBase

__all__ = ["GatherCollector"]


@dataclass
class _GatherRound:
    """Per-round state at one node."""

    round_id: int
    key: int
    aggregate: Aggregate
    waves_left: int
    wave_interval: float
    local_state: Any = None
    child_states: dict[int, Any] = field(default_factory=dict)
    #: root-only fields
    on_result: Callable[[Any], None] | None = None
    is_root: bool = False
    span: SpanBase | None = None


class GatherCollector:
    """Membership-free on-demand collection for one node.

    Parameters
    ----------
    dat:
        The node's :class:`DatNodeService` (supplies parent selection,
        value reads, and ownership tests).
    broadcast:
        The node's :class:`BroadcastService` (request dissemination).
    """

    _round_counter = 0

    def __init__(self, dat: DatNodeService, broadcast: "BroadcastService") -> None:
        self.dat = dat
        self.broadcast = broadcast
        self._rounds: dict[int, _GatherRound] = {}
        self._chain_deliver = broadcast.on_deliver
        broadcast.on_deliver = self._on_broadcast
        dat.host.upcalls["gather_push"] = self._on_push

    def close(self) -> None:
        """Detach: restore the chained deliver hook, drop the upcall."""
        self.broadcast.on_deliver = self._chain_deliver
        self.dat.host.upcalls.pop("gather_push", None)
        self._rounds.clear()

    @property
    def ident(self) -> int:
        return self.dat.ident

    # ------------------------------------------------------------------ #
    # Root side
    # ------------------------------------------------------------------ #

    def collect(
        self,
        key: int,
        aggregate: Aggregate | str,
        on_result: Callable[[Any], None],
        waves: int = 12,
        wave_interval: float = 0.2,
    ) -> int:
        """Run one membership-free collection round from this node.

        ``waves`` must be at least the tree height for exactness
        (``ceil(log2 n)`` suffices for balanced DATs); ``wave_interval``
        must comfortably exceed one network delay. Returns the round id.
        """
        if waves <= 0:
            raise AggregationError("waves must be positive")
        agg = get_aggregate(aggregate) if isinstance(aggregate, str) else aggregate
        GatherCollector._round_counter += 1
        round_id = GatherCollector._round_counter
        self.broadcast.broadcast(
            {
                "__gather__": {
                    "round_id": round_id,
                    "key": key,
                    "aggregate": agg.name,
                    "agg_kwargs": _aggregate_kwargs(agg),
                    "waves": waves,
                    "wave_interval": wave_interval,
                    "root": self.ident,
                }
            }
        )
        # The initiator's own delivery (local) marks it as root.
        round_state = self._rounds[round_id]
        round_state.is_root = True
        round_state.on_result = on_result
        round_state.span = telemetry.span(
            "dat.gather",
            node=self.ident,
            key=key,
            round_id=round_id,
            aggregate=agg.name,
            waves=waves,
        )
        # Finalization fires one interval after the last wave arrives.
        self.dat.host.transport.schedule(
            (waves + 2) * wave_interval, lambda: self._finalize(round_id)
        )
        return round_id

    def _finalize(self, round_id: int) -> None:
        round_state = self._rounds.pop(round_id, None)
        if round_state is None or round_state.on_result is None:
            return
        states = [round_state.local_state, *round_state.child_states.values()]
        merged = round_state.aggregate.merge_all(states)
        if round_state.span is not None:
            round_state.span.finish(n_children=len(round_state.child_states))
            telemetry.count("gather_rounds_total")
        round_state.on_result(round_state.aggregate.finalize(merged))

    # ------------------------------------------------------------------ #
    # Every node
    # ------------------------------------------------------------------ #

    def _on_broadcast(self, initiator: int, payload: Any) -> None:
        request = payload.get("__gather__") if isinstance(payload, dict) else None
        if request is None:
            if self._chain_deliver is not None:
                self._chain_deliver(initiator, payload)
            return
        agg = get_aggregate(request["aggregate"], **request.get("agg_kwargs", {}))
        round_state = _GatherRound(
            round_id=request["round_id"],
            key=request["key"],
            aggregate=agg,
            waves_left=request["waves"],
            wave_interval=request["wave_interval"],
            local_state=agg.lift(self.dat.value_provider()),
        )
        self._rounds[round_state.round_id] = round_state
        if self.ident != request["root"]:
            self._schedule_wave(round_state.round_id)

    def _schedule_wave(self, round_id: int) -> None:
        round_state = self._rounds.get(round_id)
        if round_state is None or round_state.waves_left <= 0:
            return

        def wave() -> None:
            state = self._rounds.get(round_id)
            if state is None:
                return
            state.waves_left -= 1
            merged = state.aggregate.merge_all(
                [state.local_state, *state.child_states.values()]
            )
            parent = self.dat.parent_toward_key(state.key)
            if parent is not None:
                self.dat.net.send(
                    Message(
                        kind="gather_push",
                        source=self.ident,
                        destination=parent,
                        payload={
                            "round_id": round_id,
                            "state": _encode_state(merged),
                        },
                    )
                )
            if state.waves_left > 0:
                self._schedule_wave(round_id)
            else:
                # Participation over; root rounds are popped by _finalize.
                if not state.is_root:
                    self._rounds.pop(round_id, None)

        self.dat.host.transport.schedule(round_state.wave_interval, wave)

    def _on_push(self, message: Message) -> None:
        round_id = message.payload["round_id"]
        round_state = self._rounds.get(round_id)
        if round_state is None:
            return None  # round over or never seen (late broadcast)
        round_state.child_states[message.source] = _decode_state(
            message.payload["state"], round_state.aggregate
        )
        return None


def _aggregate_kwargs(aggregate: Aggregate) -> dict[str, Any]:
    """Constructor kwargs needed to recreate ``aggregate`` remotely."""
    kwargs: dict[str, Any] = {}
    for attr in ("k", "q", "low", "high", "n_bins"):
        if hasattr(aggregate, attr):
            kwargs[attr] = getattr(aggregate, attr)
    return kwargs

"""Slab-backed continuous aggregation: whole protocol rounds as array ops.

This is the core-layer piece of the bulk-simulation path. One
:class:`SlabContinuousRun` replaces ``n`` :class:`~repro.core.service.DatNodeService`
instances for a single rendezvous key on a static converged ring: node
state lives in a handful of shared NumPy columns (local values, per-child
cached partial states, receipt clocks), tree structure is the immutable
parent array derived from one shared :class:`~repro.chord.block.ChordNodeBlock`,
and each push interval executes as

1. one vectorized merge (local lift + scatter-add of fresh child states,
   in ascending-child order — the exact fold order of the object path),
2. one :class:`~repro.sim.messages.MessageBatch` through
   :meth:`~repro.sim.simnet.SimTransport.send_batch` (per-message wire
   sizes computed arithmetically, one engine event per latency group),
3. one vectorized cache update when the batch delivers.

**Equivalence contract.** :func:`run_protocol_slab` is bit-identical to
:func:`run_protocol_oracle` — the same scenario driven through real
``DatNodeService`` objects — in root estimate, per-node message/byte
accounting, and push counts, for the loss-free case with any supported
aggregate and for lossy runs with order-insensitive aggregates
(``count``/``min``/``max``; under loss the object path's child-dict
*insertion order* depends on which pushes survived, so float-sum fold
order is not reproducible by any fixed-order kernel). Asserted in
``tests/property/test_prop_protocol.py`` at n <= 4096 for both schemes.

Supported aggregates: ``sum``, ``count``, ``min``, ``max``, ``avg``.
The long-tail aggregates (histogram, top-k, std) keep the object path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro import telemetry
from repro.chord.block import ChordNodeBlock
from repro.chord.ring import StaticRing
from repro.core.aggregates import get_aggregate
from repro.core.service import DatNodeService, StandaloneDatHost
from repro.errors import AggregationError
from repro.sim.messages import (
    MessageBatch,
    envelope_overhead,
    float_repr_lengths,
    int_digit_counts,
    reserve_msg_ids,
)
from repro.sim.simnet import SimTransport

__all__ = [
    "SLAB_AGGREGATES",
    "ProtocolRunResult",
    "SlabContinuousRun",
    "run_protocol_slab",
    "run_protocol_oracle",
]

#: Aggregates the slab path supports (partial state fits in 1-2 columns).
SLAB_AGGREGATES = ("sum", "count", "min", "max", "avg")


@dataclass(frozen=True)
class ProtocolRunResult:
    """Outcome of one continuous-push protocol run (either path).

    Per-node arrays are aligned with ``ids`` (ascending identifiers); they
    come from the transport's :class:`~repro.telemetry.hotspot.HotspotAccountant`,
    so the equivalence tests compare the *accounted wire traffic*, not an
    internal proxy.
    """

    n_nodes: int
    scheme: str
    aggregate: str
    key: int
    root: int
    rounds: int
    estimate: Any
    pushes_total: int
    ids: np.ndarray
    sent: np.ndarray
    received: np.ndarray
    bytes_sent: np.ndarray
    bytes_received: np.ndarray
    state_bytes: int

    @property
    def messages_total(self) -> int:
        return int(self.sent.sum())

    @property
    def bytes_total(self) -> int:
        return int(self.bytes_sent.sum())


def _per_node_traffic(
    transport: SimTransport, ids: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-node (sent, received, bytes_sent, bytes_received) arrays."""
    n = len(ids)
    sent = np.zeros(n, dtype=np.int64)
    received = np.zeros(n, dtype=np.int64)
    bytes_sent = np.zeros(n, dtype=np.int64)
    bytes_received = np.zeros(n, dtype=np.int64)
    for i, ident in enumerate(ids.tolist()):
        load = transport.stats.load(ident)
        sent[i] = load.sent
        received[i] = load.received
        bytes_sent[i] = load.bytes_sent
        bytes_received[i] = load.bytes_received
    return sent, received, bytes_sent, bytes_received


class SlabContinuousRun:
    """Continuous-push aggregation for one key, all nodes in one object.

    Parameters
    ----------
    block:
        Shared routing state of the converged ring.
    transport:
        Simulated transport; rounds ride its engine and its accounting.
    key:
        Rendezvous key; the owner (``successor(key)``) finalizes instead
        of pushing.
    aggregate:
        One of :data:`SLAB_AGGREGATES`.
    values:
        Local reading per node, aligned with ``block.ids``.
    scheme:
        ``"basic"`` or ``"balanced"`` parent selection.
    interval, stale_after:
        As in :meth:`DatNodeService.start_continuous`: push period and the
        child-state expiry horizon in intervals.
    d0:
        Mean-gap estimate for the balanced limiter; defaults to the
        overlay's convention ``space.size / n`` (a float, deliberately —
        the limiter's float-to-Fraction conversion is part of the
        bit-exactness contract with the object path).
    """

    def __init__(
        self,
        block: ChordNodeBlock,
        transport: SimTransport,
        key: int,
        aggregate: str,
        values: np.ndarray,
        scheme: str = "balanced",
        interval: float = 1.0,
        stale_after: float = 4.0,
        d0: float | None = None,
    ) -> None:
        if aggregate not in SLAB_AGGREGATES:
            raise AggregationError(
                f"slab path supports {SLAB_AGGREGATES}, got {aggregate!r} "
                "(use the object path for long-tail aggregates)"
            )
        n = len(block)
        if len(values) != n:
            raise AggregationError(
                f"values length {len(values)} does not match {n} nodes"
            )
        self.block = block
        self.transport = transport
        self.key = int(key)
        self.aggregate = aggregate
        self.scheme = scheme
        self.interval = float(interval)
        self.stale_after = float(stale_after)
        self.values = np.asarray(values, dtype=np.float64)

        d0_est = block.space.size / n if d0 is None else d0
        parents = block.key_parents(self.key, scheme=scheme, d0=d0_est)
        self.owner_index = block.owner_index(self.key)
        self.root = int(block.ids[self.owner_index])
        # Push rows: every node with a parent except the owner, ascending —
        # the same order the object services tick in (they are started in
        # ascending-ident order and the engine breaks ties by insertion).
        has_parent = parents >= 0
        has_parent[self.owner_index] = False
        self.push_rows = np.flatnonzero(has_parent)
        self.parent_ids = parents[self.push_rows]
        self.parent_index = np.searchsorted(block.ids, self.parent_ids)

        # Per-child cache: the partial state each node last *delivered* to
        # its parent, plus the receipt clock — the slab analogue of every
        # parent's ``child_states`` dict, keyed by child since each child
        # has exactly one parent for this key.
        self.cached_at = np.full(n, -np.inf, dtype=np.float64)
        self.has_entry = np.zeros(n, dtype=bool)
        if aggregate == "count":
            self._lift = np.ones(n, dtype=np.int64)
            self.cache = [np.zeros(n, dtype=np.int64)]
        elif aggregate == "avg":
            self._lift = None
            self.cache = [np.zeros(n, dtype=np.float64), np.zeros(n, dtype=np.int64)]
        else:
            self._lift = None
            self.cache = [np.zeros(n, dtype=np.float64)]

        self.estimate: Any = None
        self.pushes_sent = np.zeros(n, dtype=np.int64)
        self.rounds_run = 0

        # Wire-size constants (see sim.messages): everything but the
        # src/dst/msg_id numerals and the state body is fixed per key.
        base = envelope_overhead("agg_push")
        payload_probe = json.dumps(
            {"key": self.key, "state": 0}, separators=(",", ":")
        )
        self._fixed_overhead = base + len(payload_probe) - 1  # minus the "0"
        self._tuple_overhead = (
            len(json.dumps({"__tuple__": [0, 0]}, separators=(",", ":"))) - 2
        )
        self._src_digits = int_digit_counts(block.ids[self.push_rows])
        self._dst_digits = int_digit_counts(self.parent_ids)

        self._cancel: Callable[[], None] | None = None

    # ------------------------------------------------------------------ #

    def _merged_columns(self, now: float) -> list[np.ndarray]:
        """Every node's merge of local lift + fresh child states.

        The scatter ops apply per-edge in ascending-child order (edges are
        materialized sorted by child index), which reproduces the object
        path's dict-ordered left fold exactly for the loss-free case.
        """
        horizon = now - self.stale_after * self.interval
        fresh = self.has_entry & ~(self.cached_at < horizon)
        included = fresh[self.push_rows]
        child = self.push_rows[included]
        parent = self.parent_index[included]
        if self.aggregate == "count":
            merged = self._lift.copy()
            np.add.at(merged, parent, self.cache[0][child])
            return [merged]
        if self.aggregate == "sum":
            merged = self.values.copy()
            np.add.at(merged, parent, self.cache[0][child])
            return [merged]
        if self.aggregate == "min":
            merged = self.values.copy()
            np.minimum.at(merged, parent, self.cache[0][child])
            return [merged]
        if self.aggregate == "max":
            merged = self.values.copy()
            np.maximum.at(merged, parent, self.cache[0][child])
            return [merged]
        # avg: (sum, count) componentwise
        totals = self.values.copy()
        counts = np.ones(len(self.block), dtype=np.int64)
        np.add.at(totals, parent, self.cache[0][child])
        np.add.at(counts, parent, self.cache[1][child])
        return [totals, counts]

    def _state_lengths(self, cols: list[np.ndarray], rows: np.ndarray) -> np.ndarray:
        """JSON byte length of each pushed state body."""
        if self.aggregate == "count":
            return int_digit_counts(cols[0][rows])
        if self.aggregate == "avg":
            return (
                self._tuple_overhead
                + float_repr_lengths(cols[0][rows])
                + int_digit_counts(cols[1][rows])
            )
        return float_repr_lengths(cols[0][rows])

    def _finalize(self, cols: list[np.ndarray], i: int) -> Any:
        if self.aggregate == "count":
            return int(cols[0][i])
        if self.aggregate == "avg":
            return float(cols[0][i]) / int(cols[1][i])
        return float(cols[0][i])

    def push_round(self) -> None:
        """Execute one push interval for every node (the slab hot path)."""
        now = self.transport.now()
        cols = self._merged_columns(now)
        self.estimate = self._finalize(cols, self.owner_index)
        rows = self.push_rows
        n_push = len(rows)
        if n_push == 0:
            return
        self.pushes_sent[rows] += 1
        telemetry.count("agg_pushes_total", float(n_push))
        msg_id_start = reserve_msg_ids(n_push)
        sizes = (
            self._fixed_overhead
            + self._src_digits
            + self._dst_digits
            + int_digit_counts(msg_id_start + np.arange(n_push, dtype=np.int64))
            + self._state_lengths(cols, rows)
        )
        state_cols = {f"state{j}": col[rows] for j, col in enumerate(cols)}
        batch = MessageBatch(
            kind="agg_push",
            sources=self.block.ids[rows],
            destinations=self.parent_ids,
            sizes=sizes,
            msg_id_start=msg_id_start,
            payload_columns=state_cols,
            payload_of=lambda i: {
                "key": self.key,
                "state": self._encode_row(state_cols, i),
            },
        )
        self.transport.send_batch(batch, self._on_deliver)
        self.rounds_run += 1

    def _encode_row(self, state_cols: dict[str, np.ndarray], i: int) -> Any:
        """Wire encoding of one pushed state (materialization/debug only)."""
        if self.aggregate == "count":
            return int(state_cols["state0"][i])
        if self.aggregate == "avg":
            return {
                "__tuple__": [
                    float(state_cols["state0"][i]),
                    int(state_cols["state1"][i]),
                ]
            }
        return float(state_cols["state0"][i])

    def _on_deliver(self, batch: MessageBatch, rows: np.ndarray) -> None:
        """Fold a delivered batch into the per-child caches."""
        child = self.push_rows[rows]
        for j, _col in enumerate(self.cache):
            self.cache[j][child] = batch.payload_columns[f"state{j}"][rows]
        self.cached_at[child] = self.transport.now()
        self.has_entry[child] = True

    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Arm the periodic round timer (first round after one interval)."""

        def tick() -> None:
            self.push_round()
            self._cancel = self.transport.schedule(self.interval, tick)

        self._cancel = self.transport.schedule(self.interval, tick)

    def stop(self) -> None:
        """Cancel the periodic round timer."""
        if self._cancel is not None:
            self._cancel()
            self._cancel = None

    def state_nbytes(self) -> int:
        """Bytes of array state this run owns, including its share of the
        block (ids + finger matrix) — the protocol-mode memory gate input."""
        owned = (
            self.values.nbytes
            + self.cached_at.nbytes
            + self.has_entry.nbytes
            + self.pushes_sent.nbytes
            + self.push_rows.nbytes
            + self.parent_ids.nbytes
            + self.parent_index.nbytes
            + self._src_digits.nbytes
            + self._dst_digits.nbytes
            + sum(col.nbytes for col in self.cache)
        )
        if self._lift is not None:
            owned += self._lift.nbytes
        return owned + self.block.state_nbytes()


def run_protocol_slab(
    ring: StaticRing,
    key: int,
    rounds: int,
    aggregate: str = "sum",
    scheme: str = "balanced",
    values: np.ndarray | None = None,
    interval: float = 1.0,
    stale_after: float = 4.0,
    transport: SimTransport | None = None,
) -> ProtocolRunResult:
    """Run ``rounds`` continuous-push intervals through the slab path.

    The run horizon is ``rounds * interval``: round-``rounds`` pushes are
    sent (and accounted) but their deliveries stay in flight, exactly like
    the oracle's horizon.
    """
    transport = transport if transport is not None else SimTransport()
    block = ChordNodeBlock.from_ring(ring)
    if values is None:
        values = np.ones(len(block), dtype=np.float64)
    run = SlabContinuousRun(
        block,
        transport,
        key,
        aggregate,
        values,
        scheme=scheme,
        interval=interval,
        stale_after=stale_after,
    )
    run.start()
    transport.run(until=rounds * interval)
    run.stop()
    sent, received, bytes_sent, bytes_received = _per_node_traffic(
        transport, block.ids
    )
    return ProtocolRunResult(
        n_nodes=len(block),
        scheme=scheme,
        aggregate=aggregate,
        key=int(key),
        root=run.root,
        rounds=rounds,
        estimate=run.estimate,
        pushes_total=int(run.pushes_sent.sum()),
        ids=block.ids,
        sent=sent,
        received=received,
        bytes_sent=bytes_sent,
        bytes_received=bytes_received,
        state_bytes=run.state_nbytes(),
    )


def run_protocol_oracle(
    ring: StaticRing,
    key: int,
    rounds: int,
    aggregate: str = "sum",
    scheme: str = "balanced",
    values: np.ndarray | None = None,
    interval: float = 1.0,
    stale_after: float = 4.0,
    transport: SimTransport | None = None,
) -> ProtocolRunResult:
    """The same scenario through real per-node ``DatNodeService`` objects.

    This is the bit-exactness oracle for :func:`run_protocol_slab`:
    services start in ascending-ident order at t=0 (first push after one
    interval), finger tables are the converged ring's, ``d0`` is the
    overlay convention ``space.size / n``. O(n) object state — intended
    for n <= a few thousand.
    """
    transport = transport if transport is not None else SimTransport()
    space = ring.space
    ids = ring.id_index().ids
    n = len(ids)
    if values is None:
        values = np.ones(n, dtype=np.float64)
    root = ring.successor(key)
    d0 = space.size / n

    services: list[DatNodeService] = []
    hosts: list[StandaloneDatHost] = []
    for i, ident in enumerate(ids.tolist()):
        host = StandaloneDatHost(ident, space, transport)
        table = ring.finger_table(ident)
        service = DatNodeService(
            host,
            finger_provider=lambda table=table: table,
            value_provider=lambda v=float(values[i]): v,
            scheme=scheme,
            d0_provider=(lambda: d0) if scheme == "balanced" else None,
        )
        hosts.append(host)
        services.append(service)
    for service in services:
        service.start_continuous(
            key, root, aggregate, interval, stale_after=stale_after
        )
    transport.run(until=rounds * interval)

    root_pos = int(np.searchsorted(ids, np.int64(root)))
    estimate = services[root_pos].root_estimate(key)
    pushes = sum(s._continuous[key].pushes_sent for s in services)
    for service in services:
        service.close()
    for host in hosts:
        host.shutdown()
    sent, received, bytes_sent, bytes_received = _per_node_traffic(transport, ids)
    return ProtocolRunResult(
        n_nodes=n,
        scheme=scheme,
        aggregate=aggregate,
        key=int(key),
        root=int(root),
        rounds=rounds,
        estimate=estimate,
        pushes_total=int(pushes),
        ids=ids,
        sent=sent,
        received=received,
        bytes_sent=bytes_sent,
        bytes_received=bytes_received,
        state_bytes=0,
    )

"""Multiple simultaneous DAT trees (paper Secs. 2.3 / 3.2 / 4).

A monitoring deployment runs one DAT per aggregated attribute; the paper
argues consistent hashing "is capable of building multiple DAT trees in a
load-balanced fashion" (root selection spreads over nodes) and the
prototype's aggregation table multiplexes them. This module provides the
multi-tree view: build a forest keyed by attribute names, and analyze the
*combined* per-node load — the quantity that actually matters when many
attributes are monitored at once.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.chord.hashing import sha1_id
from repro.chord.ring import StaticRing
from repro.core.analysis import imbalance_factor
from repro.core.builder import DatScheme, DatTreeBuilder
from repro.core.tree import DatTree

if TYPE_CHECKING:  # circular at runtime via the builder's lazy imports
    from repro.chord.incremental import DatUpdateReport

__all__ = ["DatForest", "ForestLoadReport"]


@dataclass(frozen=True)
class ForestLoadReport:
    """Combined load statistics across a forest of DAT trees."""

    n_trees: int
    n_nodes: int
    #: per-node messages summed over all trees (one round each).
    combined_loads: dict[int, int]
    #: per-node count of root roles held.
    root_roles: dict[int, int]

    @property
    def combined_imbalance(self) -> float:
        """Max/avg of the summed per-node load."""
        return imbalance_factor(self.combined_loads)

    @property
    def max_root_roles(self) -> int:
        """Most root roles concentrated on any single node."""
        return max(self.root_roles.values(), default=0)

    def as_row(self) -> dict[str, float]:
        return {
            "n_trees": self.n_trees,
            "n_nodes": self.n_nodes,
            "combined_imbalance": self.combined_imbalance,
            "max_root_roles": self.max_root_roles,
            "max_combined_load": max(self.combined_loads.values(), default=0),
        }


class DatForest:
    """A set of DAT trees over one overlay, keyed by attribute name.

    Parameters
    ----------
    ring:
        The shared overlay.
    attributes:
        Monitored attribute names; each maps to a rendezvous key via SHA-1
        (Sec. 2.3) and hence to its own tree.
    scheme:
        Tree-construction scheme for every tree.
    """

    def __init__(
        self,
        ring: StaticRing,
        attributes: list[str],
        scheme: DatScheme | str = DatScheme.BALANCED,
    ) -> None:
        if not attributes:
            raise ValueError("a forest needs at least one attribute")
        if len(set(attributes)) != len(attributes):
            raise ValueError(f"duplicate attributes: {attributes}")
        self.ring = ring
        self.attributes = list(attributes)
        self._builder = DatTreeBuilder(ring, scheme=scheme)
        self._trees: dict[str, DatTree] | None = None

    @property
    def trees(self) -> dict[str, DatTree]:
        """attribute -> its DAT tree (built lazily, shared finger tables)."""
        if self._trees is None:
            self._trees = {
                attribute: self._builder.build(sha1_id(attribute, self.ring.space))
                for attribute in self.attributes
            }
        return self._trees

    def tree(self, attribute: str) -> DatTree:
        """The tree aggregating one attribute."""
        try:
            return self.trees[attribute]
        except KeyError:
            raise KeyError(
                f"attribute {attribute!r} not in forest {self.attributes}"
            ) from None

    def roots(self) -> dict[str, int]:
        """attribute -> root node."""
        return {attribute: tree.root for attribute, tree in self.trees.items()}

    def invalidate(self) -> None:
        """Rebuild lazily after out-of-band ring membership changes.

        Not needed after :meth:`apply_event`, which keeps every tree
        current incrementally.
        """
        self._builder.invalidate()
        self._trees = None

    def apply_event(self, kind: str, ident: int) -> DatUpdateReport:
        """Apply one join/leave/crash to *every* tree in the forest.

        One membership event updates all trees through the shared
        incremental engine — O(log n) expected finger patches once per
        event, plus the per-tree affected-set reparenting. Trees held by
        the forest are patched in place (root handovers swap in a rebuilt
        tree for that attribute only).
        """
        self.trees  # ensure every tree exists and is tracked by the engine
        report = self._builder.apply_event(kind, ident)
        refreshed = {
            attribute: self._builder.build(sha1_id(attribute, self.ring.space))
            for attribute in self.attributes
        }
        self._trees = refreshed
        return report

    # ------------------------------------------------------------------ #
    # Combined-load analysis (the Sec. 3.2 multi-tree claim)
    # ------------------------------------------------------------------ #

    def load_report(self) -> ForestLoadReport:
        """Per-node load summed over one aggregation round of every tree."""
        combined: Counter[int] = Counter({node: 0 for node in self.ring})
        root_roles: Counter[int] = Counter()
        for tree in self.trees.values():
            for node, load in tree.message_loads().items():
                combined[node] += load
            root_roles[tree.root] += 1
        return ForestLoadReport(
            n_trees=len(self.trees),
            n_nodes=len(self.ring),
            combined_loads=dict(combined),
            root_roles=dict(root_roles),
        )

    def per_tree_stats(self) -> dict[str, dict[str, float]]:
        """attribute -> that tree's TreeStats row."""
        return {
            attribute: tree.stats().as_dict()
            for attribute, tree in self.trees.items()
        }

"""DatOverlay — a live protocol overlay with DAT services on every node.

Convenience wiring for the common experiment/application pattern: a
:class:`~repro.chord.network.ChordNetwork` plus one
:class:`~repro.core.service.DatNodeService` per node, kept consistent as
members join and leave. Used by the extreme-dynamics experiment (the
paper's suggested future work) and available as public API for downstream
simulations.
"""

from __future__ import annotations

import os
from typing import Any, Callable

from repro import telemetry
from repro.chord.idspace import IdSpace
from repro.chord.network import ChordNetwork
from repro.chord.node import ChordConfig
from repro.core.service import DatNodeService
from repro.errors import RingError
from repro.sim.simnet import SimTransport
from repro.sim.transport import Transport

__all__ = ["DatOverlay"]


class DatOverlay:
    """A churn-capable overlay where every node runs the DAT layer.

    Parameters
    ----------
    space:
        Identifier space.
    transport:
        Message substrate (any :class:`Transport`).
    config:
        Chord protocol tuning.
    scheme:
        DAT construction scheme for all services.
    value_provider:
        ``node_ident -> current local reading``; defaults to 1.0 per node
        (so SUM == COUNT == live membership — handy for dynamics studies).
    telemetry_jsonl, telemetry_prom:
        Optional output paths for the live telemetry pipeline
        (:class:`~repro.telemetry.stream.LiveExport`). When either is set
        and no global runtime is installed, the overlay enables telemetry
        itself (and disables it again in :meth:`close`). The JSONL file
        streams spans as they finish; :meth:`close` appends the final
        metric/hotspot snapshot and writes the Prometheus text file.
    """

    def __init__(
        self,
        space: IdSpace,
        transport: Transport | None = None,
        config: ChordConfig | None = None,
        scheme: str = "balanced",
        value_provider: Callable[[int], float] | None = None,
        telemetry_jsonl: str | os.PathLike | None = None,
        telemetry_prom: str | os.PathLike | None = None,
    ) -> None:
        self.space = space
        # Telemetry wiring happens before the default transport is built so
        # the transport registers its hotspot accountant and binds the sim
        # clock against the runtime the export will read.
        self.live_export: telemetry.LiveExport | None = None
        self._owns_telemetry = False
        if telemetry_jsonl is not None or telemetry_prom is not None:
            tel = telemetry.active()
            if tel is None:
                tel = telemetry.configure(enabled=True)
                self._owns_telemetry = True
            assert tel is not None
            self.live_export = telemetry.LiveExport(
                tel, jsonl_path=telemetry_jsonl, prom_path=telemetry_prom
            )
        self.transport = transport if transport is not None else SimTransport()
        self.config = config or ChordConfig()
        self.scheme = scheme
        self.value_provider = value_provider or (lambda ident: 1.0)
        self.network = ChordNetwork(space, self.transport, self.config)
        self.services: dict[int, DatNodeService] = {}

    # ------------------------------------------------------------------ #
    # Live telemetry export
    # ------------------------------------------------------------------ #

    def close(self) -> dict[str, int]:
        """Tear down every node service, then finalize telemetry (idempotent).

        Services are closed first so their final spans land in the export.
        Returns the exporter's line counts (empty when no export was
        configured). Disables the global runtime only if this overlay
        enabled it.
        """
        for service in list(self.services.values()):
            service.close()
        self.services.clear()
        stats: dict[str, int] = {}
        if self.live_export is not None:
            stats = self.live_export.close()
            self.live_export = None
        if self._owns_telemetry:
            telemetry.disable()
            self._owns_telemetry = False
        return stats

    def __enter__(self) -> "DatOverlay":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.network.nodes)

    def add_node(self, ident: int, bootstrap: int | None = None) -> None:
        """Join a node and attach its DAT service."""
        node = self.network.add_node(ident, bootstrap=bootstrap)
        self.services[ident] = DatNodeService(
            node,
            finger_provider=node.finger_table,
            value_provider=lambda ident=ident: self.value_provider(ident),
            scheme=self.scheme,
            d0_provider=self._estimate_d0,
        )

    def remove_node(self, ident: int, graceful: bool = True) -> None:
        """Depart a node (closes its DAT service first).

        Teardown cost is proportional to the *departing node's own* state
        (its active keys, its pending RPCs via the transport's per-source
        index) — no scan over the remaining membership, so mass departures
        at 10^5 nodes stay linear overall instead of quadratic.
        """
        service = self.services.pop(ident, None)
        if service is not None:
            # Full teardown, not just stop_continuous: the service also
            # holds upcall registrations and a batcher on the host.
            service.close()
        self.network.remove_node(ident, graceful=graceful)

    def _estimate_d0(self) -> float:
        """Mean-gap estimate from the current (live) membership size.

        A deployed node would estimate this from its own gap or finger
        density; using the true count here isolates tree dynamics from
        estimation error (the d0-sensitivity ablation covers the latter).
        """
        count = max(len(self.network.nodes), 1)
        return self.space.size / count

    # ------------------------------------------------------------------ #
    # Aggregation across the overlay
    # ------------------------------------------------------------------ #

    def start_continuous_everywhere(
        self,
        key: int,
        aggregate: str,
        interval: float,
        stale_after: float = 4.0,
    ) -> int:
        """Start continuous aggregation on every current member.

        Returns the current root (``successor(key)`` in the live
        membership). New joiners must call :meth:`enroll` to participate.
        """
        root = self.current_root(key)
        for service in self.services.values():
            service.start_continuous(
                key, root, aggregate, interval, stale_after=stale_after
            )
        return root

    def enroll(
        self,
        ident: int,
        key: int,
        aggregate: str,
        interval: float,
        stale_after: float = 4.0,
    ) -> None:
        """Add one (newly joined) node to an active aggregation."""
        if ident not in self.services:
            raise RingError(f"node {ident} is not in the overlay")
        self.services[ident].start_continuous(
            key, self.current_root(key), aggregate, interval, stale_after=stale_after
        )

    def current_root(self, key: int) -> int:
        """``successor(key)`` under the live membership."""
        return self.network.ideal_ring().successor(key)

    def root_estimate(self, key: int) -> Any:
        """The current root's latest estimate (None before convergence)."""
        root = self.current_root(key)
        service = self.services.get(root)
        if service is None or key not in service._continuous:
            return None
        return service.root_estimate(key)

    # ------------------------------------------------------------------ #
    # Time
    # ------------------------------------------------------------------ #

    def run(self, duration: float) -> None:
        """Advance virtual time (SimTransport only)."""
        if not isinstance(self.transport, SimTransport):
            raise RingError("run() requires a SimTransport")
        self.transport.run(until=self.transport.now() + duration)

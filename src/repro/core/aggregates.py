"""Mergeable aggregate functions ``f: X+ -> X`` (paper Sec. 2.3).

DAT aggregation applies ``f`` recursively up the tree, so every supported
aggregate must be expressible as a *mergeable partial state*: leaves lift
their local value into a state, interior nodes merge children states with
their own, and the root finalizes. Merging must be associative and
commutative — the tree shape and child arrival order must not change the
result — which the property-based tests assert for every registered
aggregate.

Built-ins: SUM, COUNT, MIN, MAX, AVG, STD (Chan et al. parallel variance),
HISTOGRAM (fixed bins), TOP-K. Custom aggregates register via
:func:`register_aggregate`.
"""

from __future__ import annotations

import heapq
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import AggregationError, UnknownAggregateError

__all__ = [
    "Aggregate",
    "SumAggregate",
    "CountAggregate",
    "MinAggregate",
    "MaxAggregate",
    "AverageAggregate",
    "StdAggregate",
    "HistogramAggregate",
    "QuantileAggregate",
    "TopKAggregate",
    "register_aggregate",
    "get_aggregate",
    "available_aggregates",
]


class Aggregate(ABC):
    """One aggregate function as a mergeable-state triple.

    Subclasses define how a raw reading becomes a partial state
    (:meth:`lift`), how two partial states combine (:meth:`merge`), and how
    a state becomes the user-visible result (:meth:`finalize`).
    """

    #: Registry name ("sum", "avg", ...). Subclasses must override.
    name: str = "abstract"

    @abstractmethod
    def lift(self, value: float) -> Any:
        """Wrap one local reading into a partial state."""

    @abstractmethod
    def merge(self, left: Any, right: Any) -> Any:
        """Combine two partial states (associative, commutative)."""

    @abstractmethod
    def finalize(self, state: Any) -> Any:
        """Extract the final aggregate value from a state."""

    def merge_all(self, states: Iterable[Any]) -> Any:
        """Fold :meth:`merge` over a non-empty iterable of states."""
        iterator = iter(states)
        try:
            acc = next(iterator)
        except StopIteration:
            raise AggregationError(f"{self.name}: cannot merge zero states") from None
        for state in iterator:
            acc = self.merge(acc, state)
        return acc

    def aggregate(self, values: Iterable[float]) -> Any:
        """Convenience: lift + merge + finalize a flat value collection."""
        return self.finalize(self.merge_all(self.lift(v) for v in values))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


class SumAggregate(Aggregate):
    """Global sum."""

    name = "sum"

    def lift(self, value: float) -> float:
        return float(value)

    def merge(self, left: float, right: float) -> float:
        return left + right

    def finalize(self, state: float) -> float:
        return state


class CountAggregate(Aggregate):
    """Number of contributing nodes (each local reading counts once)."""

    name = "count"

    def lift(self, value: float) -> int:
        return 1

    def merge(self, left: int, right: int) -> int:
        return left + right

    def finalize(self, state: int) -> int:
        return state


class MinAggregate(Aggregate):
    """Global minimum."""

    name = "min"

    def lift(self, value: float) -> float:
        return float(value)

    def merge(self, left: float, right: float) -> float:
        return min(left, right)

    def finalize(self, state: float) -> float:
        return state


class MaxAggregate(Aggregate):
    """Global maximum."""

    name = "max"

    def lift(self, value: float) -> float:
        return float(value)

    def merge(self, left: float, right: float) -> float:
        return max(left, right)

    def finalize(self, state: float) -> float:
        return state


@dataclass(frozen=True)
class _MomentState:
    """(count, mean, M2) running-moment state (Chan et al. 1979)."""

    count: int
    mean: float
    m2: float


class AverageAggregate(Aggregate):
    """Global arithmetic mean, carried as (sum, count)."""

    name = "avg"

    def lift(self, value: float) -> tuple[float, int]:
        return (float(value), 1)

    def merge(self, left: tuple[float, int], right: tuple[float, int]) -> tuple[float, int]:
        return (left[0] + right[0], left[1] + right[1])

    def finalize(self, state: tuple[float, int]) -> float:
        total, count = state
        return total / count


class StdAggregate(Aggregate):
    """Global population standard deviation via parallel moment merging.

    Uses the numerically stable pairwise update of Chan, Golub & LeVeque —
    the textbook mergeable form, exact under merge reordering up to
    floating-point noise.
    """

    name = "std"

    def lift(self, value: float) -> _MomentState:
        return _MomentState(count=1, mean=float(value), m2=0.0)

    def merge(self, left: _MomentState, right: _MomentState) -> _MomentState:
        count = left.count + right.count
        delta = right.mean - left.mean
        mean = left.mean + delta * right.count / count
        m2 = left.m2 + right.m2 + delta * delta * left.count * right.count / count
        return _MomentState(count=count, mean=mean, m2=m2)

    def finalize(self, state: _MomentState) -> float:
        return math.sqrt(state.m2 / state.count)


class HistogramAggregate(Aggregate):
    """Fixed-bin histogram over a known value domain.

    Values outside ``[low, high)`` clamp into the boundary bins — live
    sensors drift slightly past nominal bounds and a dropped reading would
    silently bias COUNT-consistency checks.
    """

    name = "histogram"

    def __init__(self, low: float, high: float, n_bins: int = 10) -> None:
        if not high > low:
            raise ValueError(f"histogram domain requires high > low, got [{low}, {high}]")
        if n_bins <= 0:
            raise ValueError(f"n_bins must be positive, got {n_bins}")
        self.low = float(low)
        self.high = float(high)
        self.n_bins = int(n_bins)

    def bin_index(self, value: float) -> int:
        """Bin index of one value (clamped into range)."""
        if value < self.low:
            return 0
        if value >= self.high:
            return self.n_bins - 1
        fraction = (value - self.low) / (self.high - self.low)
        return min(int(fraction * self.n_bins), self.n_bins - 1)

    def lift(self, value: float) -> tuple[int, ...]:
        counts = [0] * self.n_bins
        counts[self.bin_index(float(value))] = 1
        return tuple(counts)

    def merge(self, left: tuple[int, ...], right: tuple[int, ...]) -> tuple[int, ...]:
        if len(left) != len(right):
            raise AggregationError(
                f"histogram states of unequal width: {len(left)} vs {len(right)}"
            )
        return tuple(a + b for a, b in zip(left, right))

    def finalize(self, state: tuple[int, ...]) -> tuple[int, ...]:
        return state

    def bin_edges(self) -> list[float]:
        """The ``n_bins + 1`` bin boundary values."""
        width = (self.high - self.low) / self.n_bins
        return [self.low + i * width for i in range(self.n_bins + 1)]


class QuantileAggregate(Aggregate):
    """Approximate quantile over a known value domain, via a fixed grid.

    The state is a histogram over ``n_bins`` equal-width bins; the quantile
    is read from the cumulative counts with linear interpolation inside the
    containing bin. Error is bounded by one bin width — for monitoring
    dashboards ("the 95th-percentile CPU usage across the Grid") that is
    exactly the fidelity/space trade-off wanted, and unlike exact
    quantiles the state is mergeable, so it flows up a DAT.
    """

    name = "quantile"

    def __init__(self, q: float = 0.5, low: float = 0.0, high: float = 100.0,
                 n_bins: int = 100) -> None:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if not high > low:
            raise ValueError(f"quantile domain requires high > low, got [{low}, {high}]")
        if n_bins <= 0:
            raise ValueError(f"n_bins must be positive, got {n_bins}")
        self.q = float(q)
        self.low = float(low)
        self.high = float(high)
        self.n_bins = int(n_bins)
        self._hist = HistogramAggregate(low=low, high=high, n_bins=n_bins)

    def lift(self, value: float) -> tuple[int, ...]:
        return self._hist.lift(value)

    def merge(self, left: tuple[int, ...], right: tuple[int, ...]) -> tuple[int, ...]:
        return self._hist.merge(left, right)

    def finalize(self, state: tuple[int, ...]) -> float:
        total = sum(state)
        if total == 0:
            raise AggregationError("quantile of an empty population")
        target = self.q * total
        width = (self.high - self.low) / self.n_bins
        cumulative = 0
        for index, count in enumerate(state):
            if cumulative + count >= target and count > 0:
                inside = (target - cumulative) / count
                return self.low + (index + min(max(inside, 0.0), 1.0)) * width
            cumulative += count
        return self.high


class TopKAggregate(Aggregate):
    """The K largest readings network-wide (e.g. most-loaded machines)."""

    name = "topk"

    def __init__(self, k: int = 10) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = int(k)

    def lift(self, value: float) -> tuple[float, ...]:
        return (float(value),)

    def merge(self, left: tuple[float, ...], right: tuple[float, ...]) -> tuple[float, ...]:
        return tuple(heapq.nlargest(self.k, left + right))

    def finalize(self, state: tuple[float, ...]) -> tuple[float, ...]:
        return tuple(sorted(state, reverse=True))


_REGISTRY: dict[str, type[Aggregate]] = {}


def register_aggregate(cls: type[Aggregate]) -> type[Aggregate]:
    """Register an aggregate class under its ``name`` (usable as decorator)."""
    if not cls.name or cls.name == "abstract":
        raise ValueError(f"{cls.__name__} must define a concrete 'name'")
    _REGISTRY[cls.name] = cls
    return cls


for _cls in (
    SumAggregate,
    CountAggregate,
    MinAggregate,
    MaxAggregate,
    AverageAggregate,
    StdAggregate,
    HistogramAggregate,
    QuantileAggregate,
    TopKAggregate,
):
    register_aggregate(_cls)


def get_aggregate(name: str, **kwargs: Any) -> Aggregate:
    """Instantiate a registered aggregate by name.

    >>> get_aggregate("sum").aggregate([1, 2, 3])
    6.0
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise UnknownAggregateError(
            f"unknown aggregate {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)


def available_aggregates() -> list[str]:
    """Sorted names of all registered aggregates."""
    return sorted(_REGISTRY)

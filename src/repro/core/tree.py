"""The DAT tree data structure and its measured properties.

A :class:`DatTree` is an explicit snapshot of the implicit tree: a parent
pointer per non-root node. The evaluation metrics of paper Sec. 5.2 —
maximum/average branching factor, height — and the structural invariants the
proofs rely on (single parent, acyclic, connected) are all computed here.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import TreeError

__all__ = ["DatTree", "TreeStats"]


@dataclass(frozen=True)
class TreeStats:
    """Summary statistics of one DAT tree (paper Sec. 5.2 metrics)."""

    n_nodes: int
    height: int
    max_branching: int
    #: Mean children count over internal (non-leaf) nodes — the paper's
    #: "average branching factor" (a per-node mean over all nodes would be
    #: trivially (n-1)/n ~= 1 and could not equal the reported 2-3.2).
    avg_branching: float
    n_leaves: int
    n_internal: int

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for tabular experiment output."""
        return {
            "n_nodes": self.n_nodes,
            "height": self.height,
            "max_branching": self.max_branching,
            "avg_branching": self.avg_branching,
            "n_leaves": self.n_leaves,
            "n_internal": self.n_internal,
        }


@dataclass
class DatTree:
    """A rooted aggregation tree over node identifiers.

    Parameters
    ----------
    root:
        Identifier of the root node (``successor(rendezvous key)``).
    parent:
        Map from every non-root node to its parent. The root must not
        appear as a key.
    key:
        The rendezvous key the tree aggregates toward (informational).
    """

    root: int
    parent: dict[int, int]
    key: int | None = None
    _children: dict[int, list[int]] | None = field(default=None, repr=False)
    _depths: dict[int, int] | None = field(default=None, repr=False)
    _height: int | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.root in self.parent:
            raise TreeError(f"root {self.root} must not have a parent")

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #

    @property
    def n_nodes(self) -> int:
        """Total node count including the root."""
        return len(self.parent) + 1

    def nodes(self) -> list[int]:
        """All node identifiers (root first, then parent-map order)."""
        return [self.root, *self.parent.keys()]

    def children(self, node: int) -> list[int]:
        """Direct children of ``node`` (empty for leaves)."""
        return self.children_map().get(node, [])

    def children_map(self) -> dict[int, list[int]]:
        """Children lists for every internal node (computed once, cached)."""
        if self._children is None:
            children: dict[int, list[int]] = {}
            for child, par in self.parent.items():
                children.setdefault(par, []).append(child)
            for lst in children.values():
                lst.sort()
            self._children = children
        return self._children

    def branching_factor(self, node: int) -> int:
        """Number of children of ``node`` — its aggregation load (Sec. 3.3)."""
        return len(self.children(node))

    def depth(self, node: int) -> int:
        """Edge distance from ``node`` up to the root."""
        return self.depths()[node]

    def depths(self) -> dict[int, int]:
        """Depth of every node, computed by BFS from the root.

        Raises :class:`TreeError` if some node cannot reach the root (the
        parent map contains a cycle or a dangling parent).
        """
        if self._depths is None:
            children = self.children_map()
            depths = {self.root: 0}
            queue: deque[int] = deque([self.root])
            while queue:
                node = queue.popleft()
                for child in children.get(node, ()):
                    depths[child] = depths[node] + 1
                    queue.append(child)
            if len(depths) != self.n_nodes:
                unreachable = set(self.parent) - set(depths)
                raise TreeError(
                    f"{len(unreachable)} nodes unreachable from root "
                    f"{self.root} (cycle or dangling parent); "
                    f"example: {sorted(unreachable)[:5]}"
                )
            self._depths = depths
        return self._depths

    def path_to_root(self, node: int) -> list[int]:
        """The aggregation path ``<node, parent, ..., root>``."""
        path = [node]
        current = node
        for _ in range(self.n_nodes):
            if current == self.root:
                return path
            try:
                current = self.parent[current]
            except KeyError:
                raise TreeError(f"node {current} has no parent and is not the root")
            path.append(current)
        raise TreeError(f"cycle detected on the path from {node} to the root")

    def validate(self) -> None:
        """Check the structural invariants of paper Sec. 3.2.

        Every node has a unique parent (by construction of the dict), the
        parent graph is acyclic, and all nodes reach the root.
        """
        self.depths()  # raises on cycles / dangling parents
        for child, par in self.parent.items():
            if par == child:
                raise TreeError(f"node {child} is its own parent")

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #

    @property
    def height(self) -> int:
        """Longest root-to-leaf edge distance (paper: 'tree height').

        Cached: the first access scans the (also cached) depth map once;
        telemetry's per-build span attributes then read it for free.
        """
        if self._height is None:
            self._height = max(self.depths().values(), default=0)
        return self._height

    def branching_factors(self) -> dict[int, int]:
        """Children count of every node (0 for leaves)."""
        children = self.children_map()
        return {node: len(children.get(node, ())) for node in self.nodes()}

    def leaves(self) -> list[int]:
        """Nodes with no children."""
        children = self.children_map()
        return [node for node in self.nodes() if not children.get(node)]

    def internal_nodes(self) -> list[int]:
        """Nodes with at least one child (they carry aggregation load)."""
        return sorted(self.children_map().keys())

    def stats(self) -> TreeStats:
        """Aggregate the Sec. 5.2 metrics for this tree."""
        factors = self.branching_factors()
        internal = [f for f in factors.values() if f > 0]
        return TreeStats(
            n_nodes=self.n_nodes,
            height=self.height,
            max_branching=max(factors.values(), default=0),
            avg_branching=(sum(internal) / len(internal)) if internal else 0.0,
            n_leaves=sum(1 for f in factors.values() if f == 0),
            n_internal=len(internal),
        )

    def subtree_sizes(self) -> dict[int, int]:
        """Number of descendants (including self) below every node.

        Useful for accuracy analysis: the value aggregated at a node covers
        exactly its subtree.
        """
        sizes = {node: 1 for node in self.nodes()}
        # Accumulate bottom-up: process nodes in decreasing depth order.
        depths = self.depths()
        for node in sorted(self.parent, key=lambda v: depths[v], reverse=True):
            sizes[self.parent[node]] += sizes[node]
        return sizes

    def message_loads(self) -> dict[int, int]:
        """Per-node aggregation messages for one round: sends + receives.

        Each non-root node sends exactly one message to its parent; each
        node receives one message per child. This is the load accounting
        that reproduces the paper's Fig. 8 numbers (DESIGN.md Sec. 5).
        """
        factors = self.branching_factors()
        return {
            node: factors[node] + (0 if node == self.root else 1)
            for node in self.nodes()
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DatTree(root={self.root}, n={self.n_nodes})"

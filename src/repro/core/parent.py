"""Parent selection rules for DAT construction (paper Sec. 3.2 / 3.4).

Both schemes pick the parent of node ``i`` from ``i``'s finger table, aiming
at the tree root ``r = successor(k)``:

* **Basic** — the finger that most closely *precedes or equals* ``r``
  clockwise (the next hop of greedy Chord finger routing, where reaching the
  key's successor terminates the route). This is how N8/N12/N14/N15 all
  pick N0 directly in the paper's Fig. 2.

* **Balanced** — the same rule restricted to finger slots
  ``j <= g(x)`` where ``x = cw(i, r)`` and ``g`` is the finger limiting
  function. This is Algorithm 1, with the two printed ambiguities resolved
  as recorded in DESIGN.md Sec. 5 (largest qualifying finger wins; ``x`` is
  the distance to the root per the Sec. 3.4 prose).

Both functions operate on any :class:`~repro.chord.fingers.FingerLike`
view (a per-node :class:`~repro.chord.fingers.FingerTable` or a
:class:`~repro.chord.block.MatrixFingerView` row of the shared matrix), so
the same code serves the static analytical model and the protocol nodes.
"""

from __future__ import annotations

from repro.chord.fingers import FingerLike
from repro.core.limiting import FingerLimiter
from repro.errors import TreeError

__all__ = ["select_parent_basic", "select_parent_balanced"]


def select_parent_basic(table: FingerLike, root: int) -> int | None:
    """Parent of ``table.owner`` in the basic DAT rooted at ``root``.

    Returns ``None`` for the root itself. For every other node the finger
    table of a converged ring always contains a qualifying finger (slot 0 is
    the immediate successor, which never overshoots the root), so a ``None``
    from the scan indicates a corrupted table and raises.
    """
    owner = table.owner
    if owner == root:
        return None
    parent = table.closest_preceding(root)
    if parent is None:
        raise TreeError(
            f"node {owner} has no finger preceding root {root}; "
            "finger table is inconsistent with a converged ring"
        )
    return parent


def select_parent_balanced(
    table: FingerLike, root: int, limiter: FingerLimiter
) -> int | None:
    """Parent of ``table.owner`` in the balanced DAT rooted at ``root``.

    Restricts the basic rule to slots ``0..g(x)``. Slot 0 always qualifies
    for non-root nodes on a converged ring, so the restricted scan cannot
    come up empty either.
    """
    owner = table.owner
    if owner == root:
        return None
    x = table.space.cw(owner, root)
    max_slot = limiter(x)
    parent = table.closest_preceding(root, max_slot=max_slot)
    if parent is None:
        raise TreeError(
            f"node {owner} has no eligible finger within slot {max_slot} "
            f"preceding root {root}; finger table is inconsistent"
        )
    return parent

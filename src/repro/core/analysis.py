"""Closed-form DAT properties and load-balance metrics (paper Sec. 3.3/3.5).

The theory assumes ``n`` nodes evenly distributed in the identifier space.
For the basic DAT rooted at ``r`` the branching factor of node ``i`` at
clockwise distance ``d = cw(i, r)`` is::

    B(i, n) = log2(n) - ceil(log2(d / d0 + 1))        (d0 = 2^b / n)

so the root (``d = 0``) has ``log2 n`` children and nodes past the antipode
have none. The balanced DAT has branching factor <= 2 and height
<= ``log2 n``. These predictions are validated against measured trees in
``tests/unit/test_core_analysis.py`` and ``benchmarks/bench_theory_validation.py``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping

import numpy as np

from repro.chord.idspace import IdSpace
from repro.core.tree import DatTree
from repro.util.bits import ceil_log2, is_power_of_two

__all__ = [
    "theoretical_basic_branching",
    "theoretical_basic_depth",
    "theoretical_basic_internal_count",
    "theoretical_basic_avg_branching",
    "theoretical_max_branching_basic",
    "theoretical_balanced_max_branching",
    "theoretical_balanced_height_bound",
    "imbalance_factor",
    "load_distribution",
    "load_rank_array",
    "compare_measured_to_theory",
    "compare_depths_to_theory",
]


def theoretical_basic_branching(distance: int, n_nodes: int, bits: int) -> int:
    """Predicted branching factor ``B(i, n)`` of the basic DAT (Sec. 3.3).

    Parameters
    ----------
    distance:
        Clockwise distance ``d = cw(i, root)`` in raw identifier units.
    n_nodes:
        Network size ``n`` (a power of two for the theorem to be exact).
    bits:
        Identifier width ``b``.
    """
    if distance < 0:
        raise ValueError(f"distance must be non-negative, got {distance}")
    if n_nodes <= 0:
        raise ValueError(f"n_nodes must be positive, got {n_nodes}")
    if not is_power_of_two(n_nodes):
        raise ValueError(
            f"the closed form assumes a power-of-two network size, got {n_nodes}"
        )
    log_n = ceil_log2(n_nodes)
    d0 = Fraction(1 << bits, n_nodes)
    scaled = Fraction(distance) / d0 + 1
    # ceil(log2(scaled)) with exact rational arithmetic.
    integer_ceiling = -((-scaled.numerator) // scaled.denominator)
    penalty = ceil_log2(max(integer_ceiling, 1))
    return max(log_n - penalty, 0)


def theoretical_basic_depth(distance: int, n_nodes: int, bits: int) -> int:
    """Exact depth of a node in the basic DAT on an evenly spaced ring.

    Greedy finger routing covers the clockwise distance ``d`` to the root
    in jumps that are exact powers of two (in units of the node gap
    ``d0``), taking the largest remaining power each hop — so the hop
    count, and hence the node's tree depth, is the **population count** of
    ``d / d0``. (Check against the paper's Fig. 2: node N1 has d = 15 =
    0b1111, popcount 4 — the route <N1, N9, N13, N15, N0>.)
    """
    if distance < 0:
        raise ValueError(f"distance must be non-negative, got {distance}")
    if n_nodes <= 0:
        raise ValueError(f"n_nodes must be positive, got {n_nodes}")
    if not is_power_of_two(n_nodes):
        raise ValueError(
            f"the closed form assumes a power-of-two network size, got {n_nodes}"
        )
    d0 = (1 << bits) // n_nodes
    if distance % d0 != 0:
        raise ValueError(
            f"distance {distance} is not a multiple of the node gap {d0}"
        )
    return (distance // d0).bit_count()


def theoretical_basic_internal_count(n_nodes: int) -> int:
    """Internal (non-leaf) nodes of the basic DAT on an even ring: n/2.

    ``B(i, n) = 0`` exactly when ``d >= n*d0/2`` (the far half of the
    ring), so half the nodes are leaves.
    """
    if n_nodes <= 0 or not is_power_of_two(n_nodes):
        raise ValueError(f"requires a positive power-of-two size, got {n_nodes}")
    return max(n_nodes // 2, 1)


def theoretical_basic_avg_branching(n_nodes: int) -> float:
    """Average branching over internal nodes: ``(n-1) / (n/2)`` → 2.

    Matches the measured ~1.875 at n=16 and the paper's "constant ~2"
    claim asymptotically.
    """
    return (n_nodes - 1) / theoretical_basic_internal_count(n_nodes)


def theoretical_max_branching_basic(n_nodes: int) -> int:
    """Max branching of the basic DAT: the root's ``log2 n`` (Sec. 3.3)."""
    if n_nodes <= 0:
        raise ValueError(f"n_nodes must be positive, got {n_nodes}")
    return ceil_log2(max(n_nodes, 1))


def theoretical_balanced_max_branching() -> int:
    """Max branching of the balanced DAT under even spacing: 2 (Sec. 3.5)."""
    return 2


def theoretical_balanced_height_bound(n_nodes: int) -> int:
    """Height bound of the balanced DAT: ``ceil(log2 n)`` (Sec. 3.5)."""
    if n_nodes <= 0:
        raise ValueError(f"n_nodes must be positive, got {n_nodes}")
    return ceil_log2(max(n_nodes, 1))


def imbalance_factor(loads: Iterable[float] | Mapping[int, float]) -> float:
    """Max/average load ratio (paper Sec. 5.3).

    A perfectly balanced aggregation has an imbalance factor of 1; the
    centralized baseline grows linearly with ``n``, the basic DAT
    logarithmically, the balanced DAT stays near constant.

    Integer ndarrays take a whole-array path with no per-element boxing —
    the sum and max are exact integers, so the result is bit-identical to
    the scalar fold (one IEEE division, one IEEE ratio, same operands).
    Float ndarrays fall through to the scalar fold: ``np.sum`` is pairwise
    while ``sum`` is sequential, and the two can round differently.
    """
    if isinstance(loads, np.ndarray) and np.issubdtype(loads.dtype, np.integer):
        if not loads.size:
            raise ValueError("imbalance factor of an empty load set is undefined")
        average = int(loads.sum(dtype=np.int64)) / int(loads.size)
        if average == 0:
            raise ValueError("imbalance factor undefined for an all-zero load set")
        return int(loads.max()) / average
    values = list(loads.values()) if isinstance(loads, Mapping) else list(loads)
    if not values:
        raise ValueError("imbalance factor of an empty load set is undefined")
    average = sum(values) / len(values)
    if average == 0:
        raise ValueError("imbalance factor undefined for an all-zero load set")
    return max(values) / average


def load_distribution(loads: Mapping[int, float]) -> list[tuple[int, float]]:
    """Loads sorted descending — the 'node rank' ordering of Fig. 8(a).

    Returns ``(node, load)`` pairs; index in the list is the node's rank.
    """
    return sorted(loads.items(), key=lambda item: (-item[1], item[0]))


def load_rank_array(loads: np.ndarray) -> np.ndarray:
    """Loads sorted descending — the array-native Fig. 8(a) rank curve.

    The value vector of :func:`load_distribution` without the node pairing
    (equal loads are indistinguishable in the curve), so 10^5-node rank
    plots never materialize per-node tuples.
    """
    return np.sort(loads)[::-1]


def compare_measured_to_theory(tree: DatTree, bits: int) -> dict[int, tuple[int, int]]:
    """Per-node (measured, predicted) basic-DAT branching factors.

    Only meaningful for a basic DAT over an exactly evenly spaced ring with
    a power-of-two node count; the unit tests use it to validate the
    ``B(i, n)`` closed form node by node.
    """
    n = tree.n_nodes
    space = IdSpace(bits)
    factors = tree.branching_factors()
    out: dict[int, tuple[int, int]] = {}
    for node, measured in factors.items():
        distance = space.cw(node, tree.root)
        predicted = theoretical_basic_branching(distance, n, bits)
        out[node] = (measured, predicted)
    return out


def compare_depths_to_theory(tree: DatTree, bits: int) -> dict[int, tuple[int, int]]:
    """Per-node (measured, predicted) basic-DAT depths (popcount theorem).

    Valid under the same conditions as :func:`compare_measured_to_theory`:
    an exactly evenly spaced, power-of-two basic DAT.
    """
    n = tree.n_nodes
    space = IdSpace(bits)
    depths = tree.depths()
    out: dict[int, tuple[int, int]] = {}
    for node, measured in depths.items():
        distance = space.cw(node, tree.root)
        predicted = theoretical_basic_depth(distance, n, bits)
        out[node] = (measured, predicted)
    return out

"""Distributed Aggregation Trees (DAT) — the paper's core contribution.

Construction (paper Sec. 3):

* :func:`~repro.core.builder.build_basic_dat` — the tree implied by greedy
  Chord finger routes toward ``successor(key)`` (Sec. 3.2).
* :func:`~repro.core.builder.build_balanced_dat` — balanced routing with the
  finger limiting function ``g(x) = ceil(log2((x + 2*d0)/3))`` (Sec. 3.4).

Aggregation (paper Sec. 4): mergeable aggregate functions
(:mod:`repro.core.aggregates`), the per-node aggregation table
(:mod:`repro.core.aggtable`), and on-demand / continuous protocol modes
(:mod:`repro.core.service`).

Analysis (paper Sec. 3.3/3.5): closed-form branching factors and tree
metrics in :mod:`repro.core.analysis`.
"""

from repro.core.limiting import finger_limit, FingerLimiter
from repro.core.parent import select_parent_basic, select_parent_balanced
from repro.core.tree import DatTree, TreeStats
from repro.core.builder import (
    DatScheme,
    DatTreeBuilder,
    build_basic_dat,
    build_balanced_dat,
    build_dat,
)
from repro.core.aggregates import (
    Aggregate,
    AverageAggregate,
    CountAggregate,
    HistogramAggregate,
    MaxAggregate,
    MinAggregate,
    StdAggregate,
    SumAggregate,
    TopKAggregate,
    get_aggregate,
    register_aggregate,
)
from repro.core.aggtable import AggregationTable, AggregationEntry, AggregationMode
from repro.core.service import DatNodeService, StandaloneDatHost, OnDemandRound
from repro.core.multitree import DatForest, ForestLoadReport
from repro.core.overlay import DatOverlay
from repro.core.gathercast import GatherCollector
from repro.core.redundant import RedundantAggregator, ReplicaOutcome
from repro.core.analysis import (
    theoretical_basic_branching,
    theoretical_max_branching_basic,
    imbalance_factor,
)

__all__ = [
    "finger_limit",
    "FingerLimiter",
    "select_parent_basic",
    "select_parent_balanced",
    "DatTree",
    "TreeStats",
    "DatScheme",
    "DatTreeBuilder",
    "build_basic_dat",
    "build_balanced_dat",
    "build_dat",
    "Aggregate",
    "SumAggregate",
    "CountAggregate",
    "MinAggregate",
    "MaxAggregate",
    "AverageAggregate",
    "StdAggregate",
    "HistogramAggregate",
    "TopKAggregate",
    "get_aggregate",
    "register_aggregate",
    "AggregationTable",
    "AggregationEntry",
    "AggregationMode",
    "DatNodeService",
    "StandaloneDatHost",
    "OnDemandRound",
    "DatForest",
    "ForestLoadReport",
    "DatOverlay",
    "GatherCollector",
    "RedundantAggregator",
    "ReplicaOutcome",
    "theoretical_basic_branching",
    "theoretical_max_branching_basic",
    "imbalance_factor",
]

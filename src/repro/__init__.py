"""repro — Distributed Aggregation Trees (DAT) on Chord for Grid monitoring.

A full reproduction of Cai & Hwang, "Distributed Aggregation Algorithms
with Load-Balancing for Scalable Grid Resource Monitoring" (IPPS 2007):

* :mod:`repro.chord` — the Chord overlay (static analytical model + live
  protocol), identifier probing, consistent and locality-preserving hashing.
* :mod:`repro.core` — DAT construction (basic & balanced), mergeable
  aggregate functions, the per-node aggregation table, on-demand and
  continuous protocol modes, and closed-form tree analysis.
* :mod:`repro.sim` — the heap-based discrete-event engine and the three
  interchangeable transports (simulated, UDP, in-process).
* :mod:`repro.maan` — the multi-attribute addressable network index.
* :mod:`repro.gma` — the P-GMA monitoring stack (sensors, producers,
  consumers, traces) and the :class:`~repro.gma.monitor.GridMonitor` facade.
* :mod:`repro.baselines` — the centralized aggregation baseline.
* :mod:`repro.workloads` / :mod:`repro.experiments` — workload generators
  and one harness per paper figure.

Quickstart::

    from repro import GridMonitor, MonitorConfig
    from repro.workloads import default_schemas, make_producers

    monitor = GridMonitor(MonitorConfig(n_nodes=128, seed=7), default_schemas())
    for producer in make_producers(monitor.ring, seed=7).values():
        monitor.attach_producer(producer)
    monitor.register_all()
    cpu_avg = monitor.consumer().global_aggregate("cpu-usage", "avg")

Library modules never write to stdout (enforced by datlint's DAT004);
diagnostics flow through the ``repro`` logging tree — see
:func:`repro.sim.tracing.get_logger`.
"""

from repro.chord import IdSpace, StaticRing, sha1_id, make_assigner
from repro.core import (
    DatScheme,
    DatTree,
    build_balanced_dat,
    build_basic_dat,
    build_dat,
    get_aggregate,
    imbalance_factor,
)
from repro.gma import GridMonitor, MonitorConfig, TraceGenerator
from repro.maan import AttributeSchema, MaanNetwork, RangeQuery, Resource

__version__ = "1.0.0"

__all__ = [
    "IdSpace",
    "StaticRing",
    "sha1_id",
    "make_assigner",
    "DatScheme",
    "DatTree",
    "build_basic_dat",
    "build_balanced_dat",
    "build_dat",
    "get_aggregate",
    "imbalance_factor",
    "GridMonitor",
    "MonitorConfig",
    "TraceGenerator",
    "AttributeSchema",
    "MaanNetwork",
    "RangeQuery",
    "Resource",
    "__version__",
]
